"""Figure 5: K-means cluster purity vs. number of sampled vectors.

For each workload combination — all three together (K=3) and the three
pairs (K=2) — sample n vectors per class without replacement, cluster with
K-means at the true K, and report purity averaged over 12 runs with SEM
error bars.  The paper's observations to reproduce:

1. purity is high across the board,
2. it rises only slightly with more samples (centroids stabilize early),
3. the K=3 combination scores *below* every K=2 pair — clustering quality
   degrades as more classes are mixed.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.pipeline import CollectionResult
from repro.core.signature import Signature, stack_signatures
from repro.experiments.common import ExperimentTable
from repro.experiments.table4_svm_workloads import collect_workload_signatures
from repro.ml.kmeans import kmeans
from repro.ml.metrics import purity
from repro.util.rng import RngStream
from repro.util.stats import MeanSem, mean_sem

__all__ = ["Fig5Result", "run", "sampled_purity"]

#: The paper's four curves.
COMBINATIONS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("scp, kcompile, dbench", ("scp", "kcompile", "dbench")),
    ("scp, kcompile", ("scp", "kcompile")),
    ("scp, dbench", ("scp", "dbench")),
    ("kcompile, dbench", ("kcompile", "dbench")),
)


@dataclass
class Fig5Result:
    #: curve name -> list of (samples per class, purity mean±sem)
    curves: dict[str, list[tuple[int, MeanSem]]]
    collection: CollectionResult

    def curve(self, name: str) -> list[tuple[int, MeanSem]]:
        try:
            return self.curves[name]
        except KeyError:
            raise KeyError(f"no curve {name!r}") from None

    def final_purity(self, name: str) -> float:
        return self.curve(name)[-1][1].mean

    def table(self) -> ExperimentTable:
        sample_counts = [n for n, _ in next(iter(self.curves.values()))]
        table = ExperimentTable(
            title="Figure 5: K-means cluster purity vs sampled vectors per class",
            headers=["combination"] + [f"n={n}" for n in sample_counts],
        )
        for name, points in self.curves.items():
            table.add_row(name, *(ms.format(3) for _, ms in points))
        table.notes.append(
            "paper: high purity throughout; 3-class clustering scores below "
            "every 2-class pair"
        )
        return table


def sampled_purity(
    by_label: dict[str, list[Signature]],
    labels: tuple[str, ...],
    per_class: int,
    runs: int,
    seed: int,
) -> MeanSem:
    """Purity of K-means (K = #labels) on per-class samples, over runs."""
    if per_class <= 0:
        raise ValueError("per_class must be positive")
    scores = []
    for run_idx in range(runs):
        rng = RngStream(seed, f"fig5/{'+'.join(labels)}/{per_class}/{run_idx}")
        sampled: list[Signature] = []
        classes: list[str] = []
        for label in labels:
            pool = by_label[label]
            if len(pool) < per_class:
                raise ValueError(
                    f"need {per_class} {label!r} signatures, have {len(pool)}"
                )
            chosen = rng.choice(len(pool), size=per_class, replace=False)
            sampled.extend(pool[int(i)] for i in chosen)
            classes.extend([label] * per_class)
        x = stack_signatures(sampled)
        result = kmeans(x, len(labels), seed=int(rng.integers(0, 2**31)))
        scores.append(purity(result.assignments.tolist(), classes))
    return mean_sem(scores)


def run(
    seed: int = 2012,
    sample_counts: tuple[int, ...] = (20, 60, 100, 140, 180, 220),
    runs: int = 12,
    collection: CollectionResult | None = None,
) -> Fig5Result:
    """Compute all four purity curves."""
    max_needed = max(sample_counts)
    if collection is None:
        collection = collect_workload_signatures(
            seed=seed, intervals_per_workload=max_needed + 10
        )
    by_label = {
        label: [s.unit() for s in collection.signatures_with_label(label)]
        for label in ("scp", "kcompile", "dbench")
    }
    curves: dict[str, list[tuple[int, MeanSem]]] = {}
    for name, labels in COMBINATIONS:
        points = [
            (n, sampled_purity(by_label, labels, n, runs, seed))
            for n in sample_counts
        ]
        curves[name] = points
    return Fig5Result(curves=curves, collection=collection)
