"""Similarity-based retrieval quality — the "indexable" in the title.

The paper positions signatures as *indexable*: an operator searches past
system history by similarity.  This harness measures retrieval quality
with standard IR metrics over the workload signature pool: each signature
queries the index of all the others; a hit is relevant iff it carries the
query's label.

Reported: precision@k for several k, mean average precision (mAP), and
mean reciprocal rank (MRR), per metric (cosine and Euclidean).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.index import SignatureIndex
from repro.core.pipeline import CollectionResult
from repro.experiments.common import ExperimentTable
from repro.experiments.table4_svm_workloads import collect_workload_signatures
from repro.util.stats import mean

__all__ = ["RetrievalResult", "run"]


@dataclass
class RetrievalResult:
    #: metric -> {"p@1": ..., "p@5": ..., "p@10": ..., "map": ..., "mrr": ...}
    scores: dict[str, dict[str, float]]
    n_queries: int

    def table(self) -> ExperimentTable:
        table = ExperimentTable(
            title=f"Retrieval quality over {self.n_queries} "
                  "leave-one-out queries",
            headers=["metric", "P@1", "P@5", "P@10", "mAP", "MRR"],
        )
        for metric, s in self.scores.items():
            table.add_row(
                metric,
                f"{s['p@1']:.3f}", f"{s['p@5']:.3f}", f"{s['p@10']:.3f}",
                f"{s['map']:.3f}", f"{s['mrr']:.3f}",
            )
        return table


def _average_precision(relevances: list[bool], n_relevant: int) -> float:
    """AP over a ranked relevance list (standard IR definition)."""
    if n_relevant == 0:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for rank, relevant in enumerate(relevances, start=1):
        if relevant:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / min(n_relevant, len(relevances))


def run(
    seed: int = 2012,
    intervals_per_workload: int = 50,
    depth: int = 20,
    collection: CollectionResult | None = None,
) -> RetrievalResult:
    """Leave-one-out retrieval over the three-workload pool."""
    if depth < 10:
        raise ValueError("depth must be >= 10 (P@10 is reported)")
    if collection is None:
        collection = collect_workload_signatures(
            seed=seed, intervals_per_workload=intervals_per_workload
        )
    signatures = [s.unit() for s in collection.signatures]
    label_counts: dict[str, int] = {}
    for sig in signatures:
        label_counts[sig.label] = label_counts.get(sig.label, 0) + 1

    # One index of the full pool; each query skips its own entry in the
    # ranking (leave-one-out without n index rebuilds).
    index = SignatureIndex()
    ids = index.add_all(signatures)
    scores: dict[str, dict[str, float]] = {}
    for metric in ("cosine", "euclidean"):
        p1, p5, p10, aps, rrs = [], [], [], [], []
        for i, query in enumerate(signatures):
            results = [
                r for r in index.search(query, k=depth + 1, metric=metric)
                if r.signature_id != ids[i]
            ][:depth]
            relevances = [r.signature.label == query.label for r in results]
            p1.append(float(relevances[0]))
            p5.append(sum(relevances[:5]) / 5.0)
            p10.append(sum(relevances[:10]) / 10.0)
            aps.append(
                _average_precision(relevances, label_counts[query.label] - 1)
            )
            first_hit = next(
                (rank for rank, rel in enumerate(relevances, 1) if rel), None
            )
            rrs.append(1.0 / first_hit if first_hit else 0.0)
        scores[metric] = {
            "p@1": mean(p1),
            "p@5": mean(p5),
            "p@10": mean(p10),
            "map": mean(aps),
            "mrr": mean(rrs),
        }
    return RetrievalResult(scores=scores, n_queries=len(signatures))
