"""Table 4: SVM classification of workload signatures.

Signatures are collected from the ``scp``, ``kcompile``, and ``dbench``
workloads (the paper: ~250 per workload, every 10 s), L2-scaled into the
unit ball, and classified with the polynomial-kernel SVM under the paper's
K-fold protocol (10 folds) across six groupings: the three pairwise tasks
plus the three one-vs-rest tasks.  The reproduction target: near-perfect
accuracy/precision/recall against ~50-68 % majority baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import CollectionResult, SignaturePipeline
from repro.core.signature import Signature, stack_signatures
from repro.experiments.common import ExperimentTable
from repro.ml.crossval import CrossValResult, kfold_cross_validate
from repro.workloads.dbench import DbenchWorkload
from repro.workloads.kcompile import KernelCompileWorkload
from repro.workloads.scp import ScpWorkload

__all__ = ["Table4Result", "Grouping", "run", "collect_workload_signatures"]

#: The paper's six groupings: (display name, positive labels, negative labels).
GROUPINGS: tuple[tuple[str, tuple[str, ...], tuple[str, ...]], ...] = (
    ("dbench(+1), kcompile(-1)", ("dbench",), ("kcompile",)),
    ("scp(+1), kcompile(-1)", ("scp",), ("kcompile",)),
    ("scp(+1), dbench(-1)", ("scp",), ("dbench",)),
    ("dbench(+1), kcompile+scp(-1)", ("dbench",), ("kcompile", "scp")),
    ("scp(+1), kcompile+dbench(-1)", ("scp",), ("kcompile", "dbench")),
    ("kcompile(+1), scp+dbench(-1)", ("kcompile",), ("scp", "dbench")),
)


@dataclass(frozen=True)
class Grouping:
    """One classification task and its cross-validated outcome."""

    name: str
    result: CrossValResult


@dataclass
class Table4Result:
    groupings: list[Grouping]
    collection: CollectionResult

    def table(self) -> ExperimentTable:
        table = ExperimentTable(
            title="Table 4: SVM performance on workload signatures "
                  "(mean±stdev over folds)",
            headers=[
                "Signature grouping", "Baseline %", "Accuracy %",
                "Precision %", "Recall %",
            ],
        )
        for grouping in self.groupings:
            cv = grouping.result
            acc, acc_sd = cv.accuracy
            prec, prec_sd = cv.precision
            rec, rec_sd = cv.recall
            table.add_row(
                grouping.name,
                f"{100 * cv.baseline_accuracy:.3f}",
                f"{100 * acc:.2f}±{100 * acc_sd:.2f}",
                f"{100 * prec:.2f}±{100 * prec_sd:.2f}",
                f"{100 * rec:.2f}±{100 * rec_sd:.2f}",
            )
        table.notes.append(
            "paper: 100% on three groupings, >=99% on the rest, against "
            "51.2-68.0% baselines"
        )
        return table


def collect_workload_signatures(
    seed: int = 2012,
    intervals_per_workload: int = 80,
    interval_s: float = 10.0,
    use_idf: bool = True,
    normalize_tf: bool = True,
    self_interference: bool = True,
) -> CollectionResult:
    """Collect the scp/kcompile/dbench signature pool."""
    pipeline = SignaturePipeline(
        seed=seed,
        interval_s=interval_s,
        use_idf=use_idf,
        normalize_tf=normalize_tf,
        self_interference=self_interference,
    )
    workloads = [
        ScpWorkload(seed=seed + 1),
        KernelCompileWorkload(seed=seed + 2),
        DbenchWorkload(seed=seed + 3),
    ]
    return pipeline.collect(workloads, intervals_per_workload)


def build_task(
    signatures: list[Signature],
    positive: tuple[str, ...],
    negative: tuple[str, ...],
    unit_scale: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """(x, y) for one grouping; signatures scaled into the unit ball."""
    rows: list[Signature] = []
    labels: list[int] = []
    for sig in signatures:
        if sig.label in positive:
            labels.append(1)
        elif sig.label in negative:
            labels.append(-1)
        else:
            continue
        rows.append(sig.unit() if unit_scale else sig)
    if not rows:
        raise ValueError("grouping selected no signatures")
    return stack_signatures(rows), np.array(labels)


def run(
    seed: int = 2012,
    intervals_per_workload: int = 80,
    k_folds: int = 10,
    collection: CollectionResult | None = None,
) -> Table4Result:
    """Collect (or reuse) signatures and evaluate all six groupings."""
    if collection is None:
        collection = collect_workload_signatures(
            seed=seed, intervals_per_workload=intervals_per_workload
        )
    groupings: list[Grouping] = []
    for name, positive, negative in GROUPINGS:
        x, y = build_task(collection.signatures, positive, negative)
        cv = kfold_cross_validate(x, y, k=k_folds, seed=seed)
        groupings.append(Grouping(name=name, result=cv))
    return Table4Result(groupings=groupings, collection=collection)
