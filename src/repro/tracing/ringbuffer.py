"""The Ftrace-style fixed-size circular trace buffer.

The paper contrasts Fmeter's small fixed mapping with Ftrace's generic
ring-buffer machinery: variable-size records, SMP-safe reserve/commit pairs
(lock-heavy in 2.6.28), and silent overwrite of the oldest data when the
reader cannot keep up.  This model captures the externally observable
behaviour — occupancy, overwrites, lock traffic — which is what the
macro-benchmarks and the "signatures survive, traces don't" comparison
need.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RingBuffer", "RingBufferStats"]


@dataclass(frozen=True)
class RingBufferStats:
    """Counters mirroring ``ring_buffer_entries``/``overrun`` in Linux."""

    capacity_entries: int
    resident_entries: int
    total_written: int
    total_overwritten: int
    total_read: int
    lock_acquisitions: int

    @property
    def loss_fraction(self) -> float:
        """Fraction of all written entries that were overwritten unread."""
        if self.total_written == 0:
            return 0.0
        return self.total_overwritten / self.total_written


class RingBuffer:
    """Fixed-capacity FIFO of fixed-size entries with overwrite semantics."""

    def __init__(self, capacity_bytes: int, entry_bytes: int):
        if capacity_bytes <= 0 or entry_bytes <= 0:
            raise ValueError("capacity and entry size must be positive")
        if entry_bytes > capacity_bytes:
            raise ValueError("an entry cannot exceed the buffer capacity")
        self.capacity_entries = capacity_bytes // entry_bytes
        self.entry_bytes = entry_bytes
        self.resident = 0
        self.total_written = 0
        self.total_overwritten = 0
        self.total_read = 0
        self.lock_acquisitions = 0

    def write(self, n_entries: int) -> int:
        """Produce ``n_entries``; returns how many old entries were lost.

        Every write takes the buffer lock once per reserve/commit pair —
        the contention source the paper calls "somewhat lock-heavy".
        """
        if n_entries < 0:
            raise ValueError("cannot write a negative number of entries")
        self.lock_acquisitions += n_entries
        self.total_written += n_entries
        free = self.capacity_entries - self.resident
        overwritten = max(0, n_entries - free)
        if n_entries >= self.capacity_entries:
            # Producer lapped the buffer: everything resident was replaced.
            overwritten = self.resident + (n_entries - self.capacity_entries)
            self.resident = self.capacity_entries
        else:
            self.resident = min(self.capacity_entries, self.resident + n_entries)
        self.total_overwritten += overwritten
        return overwritten

    def read(self, max_entries: int | None = None) -> int:
        """Consume up to ``max_entries`` (all resident if None)."""
        if max_entries is not None and max_entries < 0:
            raise ValueError("cannot read a negative number of entries")
        n = self.resident if max_entries is None else min(max_entries, self.resident)
        self.lock_acquisitions += 1 if n else 0
        self.resident -= n
        self.total_read += n
        return n

    @property
    def full(self) -> bool:
        return self.resident == self.capacity_entries

    def stats(self) -> RingBufferStats:
        return RingBufferStats(
            capacity_entries=self.capacity_entries,
            resident_entries=self.resident,
            total_written=self.total_written,
            total_overwritten=self.total_overwritten,
            total_read=self.total_read,
            lock_acquisitions=self.lock_acquisitions,
        )
