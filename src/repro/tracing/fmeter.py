"""The Fmeter tracer: per-CPU slot counters behind personalized stubs.

This is the paper's Section 3 mechanism:

1. At attach time the function-to-slot mapping is allocated (a list of
   pages, each holding cache-aligned 8-byte slots) and all NOP'd call
   sites are re-enabled to call the specialized ``mcount``.
2. The *first* call of each function patches its call site into a
   personalized stub embedding two indices — page and slot (Figure 3).
3. Every subsequent call disables preemption, increments the per-CPU slot
   through the embedded indices, and re-enables preemption.  No locks, no
   atomics, no ring buffer.

Counters are exported through debugfs as text; the logging daemon diffs
consecutive reads.  An optional *hot-function cache* models the paper's
future-work optimization (Section 6): counts for the N hottest functions
live in a small dedicated region, lowering their per-event cost.
"""

from __future__ import annotations

import numpy as np

from repro.kernel.mcount import SLOTS_PER_PAGE, StubState
from repro.tracing.base import Tracer
from repro.tracing.overhead import (
    FMETER_EVENT_NS,
    FMETER_HOT_EVENT_NS,
    FMETER_LOAD_NS,
    FMETER_STUB_PATCH_NS,
)

__all__ = ["FmeterTracer"]


class FmeterTracer(Tracer):
    """Per-CPU counting tracer with Fmeter's cost profile."""

    name = "fmeter"

    #: debugfs paths, mirroring the paper's export through debugfs.
    COUNTERS_PATH = "/tracing/fmeter/counters"
    PER_CPU_PATH = "/tracing/fmeter/per_cpu/cpu{cpu}"

    def __init__(
        self,
        event_ns: float = FMETER_EVENT_NS,
        load_ns: float = FMETER_LOAD_NS,
        stub_patch_ns: float = FMETER_STUB_PATCH_NS,
        hot_cache_size: int = 0,
        hot_event_ns: float = FMETER_HOT_EVENT_NS,
    ):
        super().__init__()
        if event_ns < 0 or load_ns < 0 or stub_patch_ns < 0 or hot_event_ns < 0:
            raise ValueError("costs must be non-negative")
        if hot_cache_size < 0:
            raise ValueError("hot_cache_size must be non-negative")
        self.event_ns = event_ns
        self.load_ns = load_ns
        self.stub_patch_ns = stub_patch_ns
        self.hot_cache_size = hot_cache_size
        self.hot_event_ns = hot_event_ns
        self.stubs_patched = 0
        self._slots: np.ndarray | None = None
        self._stubbed: np.ndarray | None = None
        self._addresses: list[int] = []

    # -- lifecycle ------------------------------------------------------------

    def _on_attach(self) -> None:
        machine = self.machine
        if not machine.mcount.slot_map_built:
            self.pages_allocated = machine.mcount.build_slot_map()
        else:
            n = len(machine.symbols)
            self.pages_allocated = (n + SLOTS_PER_PAGE - 1) // SLOTS_PER_PAGE
        machine.mcount.enable_tracing()
        n_cpus = len(machine.cpus)
        n_funcs = machine.vocabulary_size
        self._slots = np.zeros((n_cpus, n_funcs), dtype=np.int64)
        self._stubbed = np.zeros(n_funcs, dtype=bool)
        self._addresses = machine.symbols.addresses
        machine.debugfs.register(self.COUNTERS_PATH, self._render_counters)
        for cpu in range(n_cpus):
            machine.debugfs.register(
                self.PER_CPU_PATH.format(cpu=cpu),
                lambda c=cpu: self._render_counters(cpu=c),
            )

    def _on_detach(self) -> None:
        machine = self.machine
        machine.mcount.disable_tracing()
        machine.debugfs.unregister(self.COUNTERS_PATH)
        for cpu in range(len(machine.cpus)):
            machine.debugfs.unregister(self.PER_CPU_PATH.format(cpu=cpu))

    # -- recording --------------------------------------------------------------

    def _record(
        self, cpu_id: int, counts: np.ndarray, events: int, load: float
    ) -> float:
        # First-call stub patching: functions seen for the first time get
        # their personalized stub installed by the specialized mcount.
        fresh = np.flatnonzero((counts > 0) & ~self._stubbed)
        patch_cost = 0.0
        if fresh.size:
            registry = self.machine.mcount
            for idx in fresh:
                site = registry.site(self._addresses[int(idx)])
                if site.state == StubState.MCOUNT:
                    registry.patch_stub(site.address)
            self._stubbed[fresh] = True
            self.stubs_patched += int(fresh.size)
            patch_cost = fresh.size * self.stub_patch_ns

        # The stub's preempt toggle: modelled per batch for balance checks,
        # charged per event in the cost below.
        cpu = self.machine.cpus[cpu_id]
        cpu.preempt_disable()
        self._slots[cpu_id] += counts
        cpu.preempt_enable()

        return patch_cost + events * self._event_cost_ns(counts, events, load)

    def _event_cost_ns(self, counts: np.ndarray | None, events: float, load: float) -> float:
        base = self.event_ns + self.load_ns * load
        if self.hot_cache_size <= 0:
            return base
        hit_rate = self._hot_hit_rate(counts, events)
        hot = self.hot_event_ns + self.load_ns * load * 0.5
        return hit_rate * hot + (1.0 - hit_rate) * base

    def _hot_hit_rate(self, counts: np.ndarray | None, events: float) -> float:
        """Fraction of events landing in the top-N hottest counters so far."""
        totals = self._slots.sum(axis=0)
        if counts is not None:
            totals = totals + counts
        if events <= 0 or totals.sum() == 0:
            return 0.0
        n = min(self.hot_cache_size, totals.size)
        hot_idx = np.argpartition(totals, -n)[-n:]
        if counts is not None:
            return float(counts[hot_idx].sum()) / float(events)
        # No batch detail: assume steady state, use global distribution.
        return float(totals[hot_idx].sum()) / float(totals.sum())

    def expected_overhead_ns(self, events: float, load: float = 0.0) -> float:
        if self._slots is None:
            raise RuntimeError("tracer is not attached")
        return events * self._event_cost_ns(None, events, load)

    # -- reading ------------------------------------------------------------------

    def counts_snapshot(self) -> np.ndarray:
        """Aggregate counts across CPUs (in symbol-table order)."""
        if self._slots is None:
            raise RuntimeError("tracer is not attached")
        return self._slots.sum(axis=0)

    def per_cpu_counts(self, cpu_id: int) -> np.ndarray:
        if self._slots is None:
            raise RuntimeError("tracer is not attached")
        return self._slots[cpu_id].copy()

    def stub_coverage(self) -> float:
        """Fraction of functions already running their personalized stub."""
        if self._stubbed is None:
            raise RuntimeError("tracer is not attached")
        return float(self._stubbed.mean())

    def _render_counters(self, cpu: int | None = None) -> str:
        """Render counters as debugfs text: ``<address> <count>`` lines."""
        counts = (
            self.counts_snapshot() if cpu is None else self._slots[cpu]
        )
        lines = [
            f"{addr:#x} {int(count)}"
            for addr, count in zip(self._addresses, counts)
        ]
        return "\n".join(lines) + "\n"

    @staticmethod
    def parse_counters(text: str) -> dict[int, int]:
        """Parse the debugfs text back into ``{address: count}``.

        The logging daemon uses this: it is deliberately the only way user
        space can see the counters, exactly like the real debugfs boundary.
        """
        out: dict[int, int] = {}
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                addr_text, count_text = line.split()
                addr, count = int(addr_text, 16), int(count_text)
            except ValueError:
                raise ValueError(
                    f"malformed counter line {lineno}: {line!r}"
                ) from None
            if count < 0:
                raise ValueError(f"negative count on line {lineno}: {line!r}")
            if addr in out:
                raise ValueError(f"duplicate address on line {lineno}: {line!r}")
            out[addr] = count
        return out
