"""The tracer interface.

A tracer observes every instrumented kernel function call made on the
machine it is attached to.  The machine calls :meth:`Tracer.observe_batch`
for each executed operation batch with the sampled per-function counts; the
tracer records what its real counterpart would record and returns the
overhead (in ns) its involvement added to the batch.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Tracer"]


class Tracer(abc.ABC):
    """Base class for kernel tracers."""

    #: Short configuration name used in result tables ("fmeter", "ftrace").
    name: str = "tracer"

    def __init__(self):
        self.machine = None
        self.total_events = 0
        self.total_overhead_ns = 0.0

    # -- lifecycle ------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self.machine is not None

    def attach(self, machine) -> None:
        """Bind to a machine.  Subclasses extend with their own setup."""
        if self.machine is not None:
            raise RuntimeError(f"tracer {self.name!r} is already attached")
        self.machine = machine
        self._on_attach()

    def detach(self) -> None:
        if self.machine is None:
            raise RuntimeError(f"tracer {self.name!r} is not attached")
        self._on_detach()
        self.machine = None

    def _on_attach(self) -> None:
        """Subclass hook: allocate buffers, patch mcount sites, ..."""

    def _on_detach(self) -> None:
        """Subclass hook: unpatch sites, release buffers, ..."""

    # -- observation ------------------------------------------------------------

    def observe_batch(
        self, cpu_id: int, counts: np.ndarray, events: int, load: float
    ) -> float:
        """Observe one executed batch; returns the overhead in ns.

        ``counts`` is the per-function call count vector for the batch (in
        symbol-table order), ``events`` its sum, ``load`` the machine
        saturation in [0, 1].
        """
        if self.machine is None:
            raise RuntimeError(f"tracer {self.name!r} is not attached")
        if events != int(counts.sum()):
            raise ValueError("events does not match counts.sum()")
        overhead = self._record(cpu_id, counts, events, load)
        self.total_events += events
        self.total_overhead_ns += overhead
        return overhead

    @abc.abstractmethod
    def _record(
        self, cpu_id: int, counts: np.ndarray, events: int, load: float
    ) -> float:
        """Record the batch and return the overhead in ns."""

    @abc.abstractmethod
    def expected_overhead_ns(self, events: float, load: float = 0.0) -> float:
        """Deterministic expected overhead for ``events`` traced calls."""
