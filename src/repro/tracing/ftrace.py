"""The stock Ftrace function tracer (the paper's expensive comparator).

Every instrumented call emits a trace record — function address, parent,
timestamp — into a per-CPU ring buffer through a locked reserve/commit
pair.  The per-event cost dwarfs Fmeter's counter increment, and unless a
reader drains the buffers fast enough, old records are silently
overwritten (which is why, in the paper's framing, Ftrace cannot simply be
left running in production while Fmeter can).

The tracer also maintains aggregated per-CPU counts: that is what a
post-processing step would recover from the trace, and it lets experiments
confirm both tracers observe the same underlying truth.
"""

from __future__ import annotations

import numpy as np

from repro.tracing.base import Tracer
from repro.tracing.overhead import (
    FTRACE_BUFFER_BYTES,
    FTRACE_ENTRY_BYTES,
    FTRACE_EVENT_NS,
    FTRACE_LOAD_NS,
)
from repro.tracing.ringbuffer import RingBuffer

__all__ = ["FtraceTracer"]


class FtraceTracer(Tracer):
    """Ring-buffer function tracer with Ftrace's cost profile."""

    name = "ftrace"

    def __init__(
        self,
        buffer_bytes: int = FTRACE_BUFFER_BYTES,
        entry_bytes: int = FTRACE_ENTRY_BYTES,
        event_ns: float = FTRACE_EVENT_NS,
        load_ns: float = FTRACE_LOAD_NS,
    ):
        super().__init__()
        if event_ns < 0 or load_ns < 0:
            raise ValueError("per-event costs must be non-negative")
        self.buffer_bytes = buffer_bytes
        self.entry_bytes = entry_bytes
        self.event_ns = event_ns
        self.load_ns = load_ns
        self.buffers: list[RingBuffer] = []
        self._counts: np.ndarray | None = None

    # -- lifecycle ------------------------------------------------------------

    def _on_attach(self) -> None:
        machine = self.machine
        machine.mcount.enable_tracing()
        n_cpus = len(machine.cpus)
        self.buffers = [
            RingBuffer(self.buffer_bytes, self.entry_bytes) for _ in range(n_cpus)
        ]
        self._counts = np.zeros(
            (n_cpus, machine.vocabulary_size), dtype=np.int64
        )
        machine.debugfs.register("/tracing/trace_stats", self._render_stats)

    def _on_detach(self) -> None:
        self.machine.mcount.disable_tracing()
        self.machine.debugfs.unregister("/tracing/trace_stats")

    # -- recording --------------------------------------------------------------

    def _record(
        self, cpu_id: int, counts: np.ndarray, events: int, load: float
    ) -> float:
        self.buffers[cpu_id].write(events)
        self._counts[cpu_id] += counts
        return events * (self.event_ns + self.load_ns * load)

    def expected_overhead_ns(self, events: float, load: float = 0.0) -> float:
        return events * (self.event_ns + self.load_ns * load)

    # -- reading ------------------------------------------------------------------

    def drain(self) -> int:
        """Consume all resident records (a ``trace_pipe`` reader)."""
        return sum(buf.read() for buf in self.buffers)

    def lost_events(self) -> int:
        """Records overwritten before any reader consumed them."""
        return sum(buf.total_overwritten for buf in self.buffers)

    def counts_snapshot(self) -> np.ndarray:
        """Aggregated per-function counts (post-processed from the trace).

        Only the records that were not overwritten would be recoverable
        from a real trace; the snapshot reports the ideal aggregate and
        :meth:`lost_events` quantifies the gap.
        """
        if self._counts is None:
            raise RuntimeError("tracer is not attached")
        return self._counts.sum(axis=0)

    def _render_stats(self) -> str:
        lines = []
        for i, buf in enumerate(self.buffers):
            s = buf.stats()
            lines.append(
                f"cpu{i}: entries={s.resident_entries} "
                f"written={s.total_written} overrun={s.total_overwritten} "
                f"read={s.total_read}"
            )
        return "\n".join(lines) + "\n"
