"""The user-space logging daemon (Section 3, last component).

The daemon periodically reads all kernel function invocation counts from
debugfs — before and after each interval — and logs the difference.  The
difference becomes one :class:`~repro.core.document.CountDocument`; tf-idf
scores are computed later, once an entire corpus exists.

Two fidelity details the paper calls out are modelled:

- **Self-interference**: the daemon itself issues syscalls (reading the
  debugfs file, appending to its log), which perturbs every signature
  uniformly; the idf factor attenuates it (Section 5).  It can be disabled
  to quantify the perturbation.
- The counters read through debugfs are *text parsed back by the daemon*,
  not a shortcut into tracer state, so the export/parse round trip is
  exercised on every interval.
"""

from __future__ import annotations

from typing import Callable

from repro.core.document import CountDocument
from repro.core.vocabulary import Vocabulary
from repro.tracing.fmeter import FmeterTracer

__all__ = ["LoggingDaemon"]


class LoggingDaemon:
    """Reads counters via debugfs, diffs per interval, emits documents."""

    #: The daemon's own kernel activity per harvest: reading the counter
    #: file (several reads — it is bigger than one buffer), appending to
    #: the signature log, and rotating file descriptors.
    SELF_OPS: tuple[tuple[str, int], ...] = (
        ("read", 6),
        ("file_write_4k", 3),
        ("open_close", 1),
    )

    def __init__(
        self,
        machine,
        interval_s: float = 10.0,
        counters_path: str = FmeterTracer.COUNTERS_PATH,
        self_interference: bool = True,
        on_document: Callable[[CountDocument], None] | None = None,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.machine = machine
        self.interval_s = interval_s
        self.counters_path = counters_path
        self.self_interference = self_interference
        #: Streaming hook: called with each document as it is harvested,
        #: before the caller sees it — how a monitoring service taps the
        #: daemon's output live instead of waiting for a batch to finish.
        self.on_document = on_document
        self.vocabulary = Vocabulary.from_symbol_table(machine.symbols)
        self.documents_emitted = 0
        self._baseline: dict[int, int] | None = None
        self._baseline_ns: float = 0.0

    # -- debugfs round trip -------------------------------------------------------

    def read_counters(self) -> dict[int, int]:
        """One debugfs read: returns ``{address: cumulative count}``."""
        text = self.machine.debugfs.read(self.counters_path)
        return FmeterTracer.parse_counters(text)

    def _log_activity(self) -> None:
        for op, n in self.SELF_OPS:
            self.machine.execute(op, n)

    # -- interval protocol ---------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._baseline is not None

    def start(self) -> None:
        """Record the interval-start counter snapshot."""
        if self.self_interference:
            self._log_activity()
        self._baseline = self.read_counters()
        self._baseline_ns = self.machine.now_ns

    def harvest(self, label: str | None = None, metadata: dict | None = None) -> CountDocument:
        """End the interval: read, diff against the baseline, emit a document.

        The post-read becomes the next interval's baseline, so consecutive
        harvests tile time without gaps — how the real daemon loops.
        """
        if self._baseline is None:
            raise RuntimeError("daemon not started; call start() first")
        if self.self_interference:
            self._log_activity()
        after = self.read_counters()
        deltas: dict[int, int] = {}
        for address, count in after.items():
            before = self._baseline.get(address, 0)
            if count < before:
                raise ValueError(
                    f"counter for {address:#x} went backwards "
                    f"({before} -> {count}); counters must be monotonic"
                )
            deltas[address] = count - before
        meta = {
            "interval_s": self.interval_s,
            "start_ns": self._baseline_ns,
            "end_ns": self.machine.now_ns,
            "config": self.machine.config_name(),
        }
        meta.update(metadata or {})
        self._baseline = after
        self._baseline_ns = self.machine.now_ns
        self.documents_emitted += 1
        document = CountDocument.from_mapping(
            self.vocabulary, deltas, label=label, metadata=meta
        )
        if self.on_document is not None:
            self.on_document(document)
        return document

    def collect(
        self,
        run_interval: Callable[[int], None],
        n_intervals: int,
        label: str | None = None,
        metadata: dict | None = None,
    ) -> list[CountDocument]:
        """Collect ``n_intervals`` documents around a workload callback.

        ``run_interval(i)`` must execute the i-th interval's worth of
        workload activity on the daemon's machine.
        """
        if n_intervals <= 0:
            raise ValueError(f"n_intervals must be positive, got {n_intervals}")
        if not self.started:
            self.start()
        documents = []
        for i in range(n_intervals):
            run_interval(i)
            documents.append(self.harvest(label=label, metadata=metadata))
        return documents
