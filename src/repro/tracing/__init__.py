"""Tracers and the user-space logging daemon.

Three configurations from the paper's evaluation:

- **vanilla** — no tracer attached (zero overhead),
- :class:`~repro.tracing.ftrace.FtraceTracer` — the stock kernel function
  tracer: every call becomes a ring-buffer record (expensive),
- :class:`~repro.tracing.fmeter.FmeterTracer` — the paper's system: every
  call increments a per-CPU cache-aligned slot found through two indices
  embedded in a per-function stub (cheap).

:class:`~repro.tracing.daemon.LoggingDaemon` is the user-space side: it
periodically reads the counters through debugfs, diffs consecutive reads,
and emits one raw count document per interval — the "documents" of the
vector space model.
"""

from repro.tracing.base import Tracer
from repro.tracing.daemon import LoggingDaemon
from repro.tracing.fmeter import FmeterTracer
from repro.tracing.ftrace import FtraceTracer
from repro.tracing.overhead import (
    FMETER_EVENT_NS,
    FMETER_HOT_EVENT_NS,
    FMETER_LOAD_NS,
    FMETER_STUB_PATCH_NS,
    FTRACE_ENTRY_BYTES,
    FTRACE_EVENT_NS,
    FTRACE_LOAD_NS,
    slowdown,
)
from repro.tracing.ringbuffer import RingBuffer

__all__ = [
    "FMETER_EVENT_NS",
    "FMETER_HOT_EVENT_NS",
    "FMETER_LOAD_NS",
    "FMETER_STUB_PATCH_NS",
    "FTRACE_ENTRY_BYTES",
    "FTRACE_EVENT_NS",
    "FTRACE_LOAD_NS",
    "FmeterTracer",
    "FtraceTracer",
    "LoggingDaemon",
    "RingBuffer",
    "Tracer",
    "slowdown",
]
