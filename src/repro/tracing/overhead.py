"""The tracer cost model, in nanoseconds per traced call event.

The constants are calibrated against the paper's measurements on a 2.93 GHz
Nehalem (Tables 1-3):

- Fmeter's stub does ``preempt_disable``; two dependent loads (page index,
  slot index); an increment; ``preempt_enable`` — a handful of cycles plus
  occasional cache misses: ~3 ns/event.  Under heavy concurrent load the
  extra instruction-cache and data-cache pollution of the stubs costs more
  (~+6 ns/event at saturation) — this reproduces apachebench's 24 %
  slowdown (Table 2) given ~10 ns of kernel work per traced call.
- Ftrace's function tracer reserves and commits a record in a shared,
  lock-heavy ring buffer and stores a timestamped entry: ~40 ns/event
  uncontended (consistent with the lmbench deltas at the paper's implied
  ~1 event per 10 ns of kernel time), plus up to ~26 ns/event of
  cross-core contention at saturation.
- Patching a personalized Fmeter stub on a function's first call costs a
  one-time text rewrite (~250 ns) — amortized to nothing, but observable
  if you measure a cold kernel, which is why benchmarks warm up.
"""

from __future__ import annotations

__all__ = [
    "FMETER_EVENT_NS",
    "FMETER_HOT_EVENT_NS",
    "FMETER_LOAD_NS",
    "FMETER_STUB_PATCH_NS",
    "FTRACE_ENTRY_BYTES",
    "FTRACE_EVENT_NS",
    "FTRACE_LOAD_NS",
    "FTRACE_BUFFER_BYTES",
    "slowdown",
]

#: Fmeter per-event cost, uncontended (preempt toggle + indexed increment).
FMETER_EVENT_NS = 3.0

#: Extra Fmeter per-event cost at full machine load (cache pollution).
FMETER_LOAD_NS = 6.0

#: Per-event cost when the counter hits the proposed hot-function cache
#: (future work, Section 6): the counter line stays resident.
FMETER_HOT_EVENT_NS = 1.2

#: One-time cost of patching a function's personalized counting stub.
FMETER_STUB_PATCH_NS = 250.0

#: Ftrace per-event cost, uncontended (ring-buffer reserve/commit + record).
FTRACE_EVENT_NS = 40.0

#: Extra Ftrace per-event cost at full machine load (buffer lock contention).
FTRACE_LOAD_NS = 26.0

#: Size of one function-trace entry in the ring buffer (ip + parent ip +
#: timestamp delta + header), and the default per-CPU buffer size.
FTRACE_ENTRY_BYTES = 32
FTRACE_BUFFER_BYTES = 1 << 21  # 2 MiB per CPU, ftrace's historical default


def slowdown(instrumented_ns: float, baseline_ns: float) -> float:
    """Latency ratio instrumented/baseline (1.0 = no slowdown)."""
    if baseline_ns <= 0:
        raise ValueError(f"baseline must be positive, got {baseline_ns}")
    if instrumented_ns < 0:
        raise ValueError(f"latency must be non-negative, got {instrumented_ns}")
    return instrumented_ns / baseline_ns
