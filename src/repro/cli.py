"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list-workloads``
    Show the available workload models.
``collect``
    Run workloads under Fmeter, build a labeled signature database, and
    save it to a ``.npz`` file.
``diagnose``
    Collect fresh signatures from one workload and diagnose them against
    a saved database (nearest syndrome + k-NN vote).
``experiment``
    Regenerate a paper table or figure and print it.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["build_parser", "main"]

#: Workload name -> factory (seed) -> Workload.
WORKLOAD_FACTORIES = {
    "scp": lambda seed: _workloads().ScpWorkload(seed=seed),
    "kcompile": lambda seed: _workloads().KernelCompileWorkload(seed=seed),
    "dbench": lambda seed: _workloads().DbenchWorkload(seed=seed),
    "idle": lambda seed: _workloads().IdleWorkload(seed=seed),
    "apachebench": lambda seed: _workloads().ApacheBenchWorkload(seed=seed),
}

EXPERIMENTS = (
    "fig1", "table1", "table2", "table3", "table4", "table5",
    "fig4", "fig5", "fig6", "retrieval", "classifiers",
)


def _workloads():
    import repro.workloads as w

    return w


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fmeter reproduction (Middleware 2012): collect, "
                    "diagnose, and regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads", help="list available workload models")

    collect = sub.add_parser(
        "collect", help="collect signatures and save a labeled database"
    )
    collect.add_argument(
        "--workloads", default="scp,kcompile,dbench",
        help="comma-separated workload names (default: scp,kcompile,dbench)",
    )
    collect.add_argument("--intervals", type=int, default=20,
                         help="logging intervals per workload")
    collect.add_argument("--interval-seconds", type=float, default=10.0)
    collect.add_argument("--seed", type=int, default=2012)
    collect.add_argument("--out", required=True, help="output .npz path")

    diagnose = sub.add_parser(
        "diagnose", help="diagnose fresh signatures against a saved database"
    )
    diagnose.add_argument("--db", required=True, help="database .npz path")
    diagnose.add_argument("--workload", required=True,
                          choices=sorted(WORKLOAD_FACTORIES))
    diagnose.add_argument("--intervals", type=int, default=5)
    diagnose.add_argument("--seed", type=int, default=2012)
    diagnose.add_argument("--k", type=int, default=5, help="k-NN votes")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table or figure"
    )
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument("--seed", type=int, default=2012)
    experiment.add_argument(
        "--fast", action="store_true",
        help="reduced scale (quick sanity run instead of paper scale)",
    )
    return parser


def _cmd_list_workloads(_args) -> int:
    for name in sorted(WORKLOAD_FACTORIES):
        workload = WORKLOAD_FACTORIES[name](0)
        print(f"{name:12s} label={workload.label!r} load={workload.load}")
    return 0


def _parse_workloads(spec: str, seed: int):
    names = [n.strip() for n in spec.split(",") if n.strip()]
    if not names:
        raise SystemExit("no workloads given")
    unknown = [n for n in names if n not in WORKLOAD_FACTORIES]
    if unknown:
        raise SystemExit(
            f"unknown workloads: {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(WORKLOAD_FACTORIES))})"
        )
    return [
        WORKLOAD_FACTORIES[name](seed + i) for i, name in enumerate(names, 1)
    ]


def _cmd_collect(args) -> int:
    from repro.core.database import SignatureDatabase
    from repro.core.pipeline import SignaturePipeline

    workloads = _parse_workloads(args.workloads, args.seed)
    pipeline = SignaturePipeline(
        seed=args.seed, interval_s=args.interval_seconds
    )
    result = pipeline.collect(workloads, args.intervals)
    db = SignatureDatabase(result.vocabulary, idf=result.model.idf())
    db.add_all([sig.unit() for sig in result.signatures])
    db.build_all_syndromes()
    db.save(args.out)
    print(
        f"collected {len(result.signatures)} signatures "
        f"({', '.join(result.labels())}); database -> {args.out}"
    )
    return 0


def _cmd_diagnose(args) -> int:
    from repro.core.corpus import Corpus
    from repro.core.database import SignatureDatabase
    from repro.core.pipeline import SignaturePipeline
    from repro.core.tfidf import TfIdfModel

    db = SignatureDatabase.load(args.db)
    pipeline = SignaturePipeline(seed=args.seed)
    if pipeline.vocabulary != db.vocabulary:
        raise SystemExit(
            "database was built from a different kernel build (vocabulary "
            "fingerprints differ) — signatures are not comparable"
        )
    workload = WORKLOAD_FACTORIES[args.workload](args.seed + 99)
    docs = pipeline.collect_documents(workload, args.intervals, run_seed=99)
    if db.idf is not None:
        # Transform fresh counts with the same weighting that built the DB.
        model = db.make_model()
    else:
        # Legacy database without idf: fit on the fresh documents only.
        model = TfIdfModel().fit(Corpus(pipeline.vocabulary, docs))
    print(f"diagnosing {len(docs)} intervals of {args.workload!r}:")
    for i, doc in enumerate(docs):
        sig = model.transform(doc).unit()
        syndrome, distance = db.nearest_syndrome(sig)
        votes = db.diagnose(sig, k=args.k)
        vote_text = ", ".join(f"{l}={f:.0%}" for l, f in votes.items())
        print(
            f"  interval {i}: nearest={syndrome.label} (d={distance:.3f})"
            f"   votes: {vote_text or 'none'}"
        )
    return 0


def _cmd_experiment(args) -> int:
    name, fast, seed = args.name, args.fast, args.seed
    if name == "fig1":
        from repro.experiments import fig1_bootup

        result = fig1_bootup.run(seed=seed)
        print(result.table().render())
        print()
        print(result.plot())
    elif name == "table1":
        from repro.experiments import table1_lmbench

        print(table1_lmbench.run(
            seed=seed, iterations=10 if fast else 40
        ).table().render())
    elif name == "table2":
        from repro.experiments import table2_apachebench

        print(table2_apachebench.run(
            seed=seed, repetitions=4 if fast else 16
        ).table().render())
    elif name == "table3":
        from repro.experiments import table3_kcompile

        print(table3_kcompile.run(seed=seed).table().render())
    elif name == "table4":
        from repro.experiments import table4_svm_workloads

        print(table4_svm_workloads.run(
            seed=seed,
            intervals_per_workload=30 if fast else 230,
            k_folds=5 if fast else 10,
        ).table().render())
    elif name == "table5":
        from repro.experiments import table5_svm_myri10ge

        print(table5_svm_myri10ge.run(
            seed=seed,
            intervals_per_variant=24 if fast else 80,
            k_folds=4 if fast else 8,
        ).table().render())
    elif name == "fig4":
        from repro.experiments import fig4_dendrogram

        result = fig4_dendrogram.run(seed=seed)
        print(result.table().render())
    elif name == "fig5":
        from repro.experiments import fig5_purity_samples

        print(fig5_purity_samples.run(
            seed=seed,
            sample_counts=(10, 20, 28) if fast else (20, 60, 100, 140, 180, 220),
            runs=4 if fast else 12,
        ).table().render())
    elif name == "fig6":
        from repro.experiments import fig6_purity_k

        print(fig6_purity_k.run(
            seed=seed,
            k_values=(2, 4, 8) if fast else tuple(range(2, 21)),
            sample_counts=(20,) if fast else (60, 140, 220),
            runs=4 if fast else 12,
        ).table().render())
    elif name == "retrieval":
        from repro.experiments import retrieval

        print(retrieval.run(
            seed=seed, intervals_per_workload=20 if fast else 50
        ).table().render())
    elif name == "classifiers":
        from repro.experiments import ablations

        print(ablations.run_classifier_comparison(
            seed=seed, intervals_per_workload=20 if fast else 40
        ).table.render())
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {name!r}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-workloads":
        return _cmd_list_workloads(args)
    if args.command == "collect":
        return _cmd_collect(args)
    if args.command == "diagnose":
        return _cmd_diagnose(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
