"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list-workloads``
    Show the available workload models.
``collect``
    Run workloads under Fmeter, build a labeled signature database, and
    save it to a ``.npz`` file.
``diagnose``
    Collect fresh signatures from one workload and diagnose them against
    a saved database (nearest syndrome + k-NN vote).
``serve``
    Run the monitoring service for a number of ingestion rounds:
    concurrent collection, incremental tf-idf, sharded snapshots.  With
    ``--listen HOST:PORT`` it then starts the HTTP gateway
    (:class:`repro.api.FmeterServer`) and serves the ``/v1/*`` API until
    interrupted.
``ingest``
    Fold more signatures into a service: resume a snapshot directory, or
    with ``--connect HOST:PORT`` collect locally and push to a remote
    gateway over HTTP.
``query``
    Run top-k diagnosis queries (all intervals diagnosed as one batched
    index query) against a resumed snapshot, or against a remote gateway
    with ``--connect``.  ``--json`` prints the wire-form response.
``stats``
    Inspect a service: index engine layout (compiled CSR postings, tail,
    tombstones) and snapshot watermark health, from a snapshot directory
    or a remote gateway (``--connect``).  ``--json`` for machine use.
``experiment``
    Regenerate a paper table or figure and print it.

The service commands speak the same typed API surface either way: the
in-process path drives :class:`repro.api.Dispatcher` directly, the
``--connect`` path drives it through :class:`repro.api.FmeterClient` —
one protocol, two transports.  Service/API failures exit with code 2
and a one-line structured error instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["build_parser", "main"]

#: Workload name -> factory (seed) -> Workload.
WORKLOAD_FACTORIES = {
    "scp": lambda seed: _workloads().ScpWorkload(seed=seed),
    "kcompile": lambda seed: _workloads().KernelCompileWorkload(seed=seed),
    "dbench": lambda seed: _workloads().DbenchWorkload(seed=seed),
    "idle": lambda seed: _workloads().IdleWorkload(seed=seed),
    "apachebench": lambda seed: _workloads().ApacheBenchWorkload(seed=seed),
}

EXPERIMENTS = (
    "fig1", "table1", "table2", "table3", "table4", "table5",
    "fig4", "fig5", "fig6", "retrieval", "classifiers",
)


def _workloads():
    import repro.workloads as w

    return w


def _subparser(sub, name: str, help_text: str, examples: list[str]):
    """A subcommand with a usage-example epilog on ``--help``."""
    epilog = "examples:\n" + "\n".join(f"  {line}" for line in examples)
    return sub.add_parser(
        name,
        help=help_text,
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fmeter reproduction (Middleware 2012): collect, "
                    "diagnose, serve, and regenerate the paper's "
                    "experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _subparser(
        sub, "list-workloads", "list available workload models",
        ["python -m repro list-workloads"],
    )

    collect = _subparser(
        sub, "collect", "collect signatures and save a labeled database",
        [
            "python -m repro collect --out db.npz",
            "python -m repro collect --workloads scp,idle --intervals 40 "
            "--out db.npz",
        ],
    )
    collect.add_argument(
        "--workloads", default="scp,kcompile,dbench",
        help="comma-separated workload names (default: scp,kcompile,dbench)",
    )
    collect.add_argument("--intervals", type=int, default=20,
                         help="logging intervals per workload")
    collect.add_argument("--interval-seconds", type=float, default=10.0)
    collect.add_argument("--seed", type=int, default=2012)
    collect.add_argument("--out", required=True, help="output .npz path")

    diagnose = _subparser(
        sub, "diagnose", "diagnose fresh signatures against a saved database",
        [
            "python -m repro diagnose --db db.npz --workload scp",
            "python -m repro diagnose --db db.npz --workload dbench "
            "--intervals 10 --k 7",
        ],
    )
    diagnose.add_argument("--db", required=True, help="database .npz path")
    diagnose.add_argument("--workload", required=True,
                          choices=sorted(WORKLOAD_FACTORIES))
    diagnose.add_argument("--intervals", type=int, default=5)
    diagnose.add_argument("--seed", type=int, default=2012)
    diagnose.add_argument("--k", type=int, default=5, help="k-NN votes")

    serve = _subparser(
        sub, "serve", "run the monitoring service: concurrent ingestion "
                      "rounds with incremental tf-idf and sharded snapshots; "
                      "--listen starts the HTTP gateway afterwards",
        [
            "python -m repro serve --state-dir state/",
            "python -m repro serve --state-dir state/ --workloads scp,idle "
            "--rounds 3 --intervals 10 --workers 8",
            "python -m repro serve --state-dir state/ --rounds 0 "
            "--listen 127.0.0.1:8080",
        ],
    )
    serve.add_argument(
        "--state-dir", required=True,
        help="sharded snapshot directory (created or resumed)",
    )
    serve.add_argument(
        "--workloads", default="scp,kcompile,dbench",
        help="comma-separated workload names ingested each round",
    )
    serve.add_argument("--rounds", type=_nonnegative_int, default=2,
                       help="ingestion rounds (one snapshot per round); "
                            "0 is allowed with --listen (serve-only)")
    serve.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="after the rounds, serve the /v1/* HTTP API here until "
             "interrupted (PORT 0 binds a free port and prints it)",
    )
    serve.add_argument(
        "--drain-s", type=_nonnegative_float, default=5.0,
        help="graceful-shutdown budget: on SIGTERM or ^C the gateway "
             "stops admitting new work (503 + Retry-After) and waits "
             "up to this many seconds for in-flight requests to finish "
             "before stopping (default %(default)s)",
    )
    serve.add_argument("--intervals", type=_positive_int, default=10,
                       help="logging intervals per workload per round")
    serve.add_argument("--interval-seconds", type=_positive_float, default=10.0)
    serve.add_argument("--workers", type=_positive_int, default=4,
                       help="collection thread-pool size")
    serve.add_argument("--shards", type=_positive_int, default=None,
                       help="query-engine shard count: search_batch "
                            "fans each query batch out across this many "
                            "signature-id-range shards (default: auto — "
                            "one per CPU core)")
    serve.add_argument("--shard-size", type=_positive_int, default=None,
                       help="signatures per snapshot shard (default: the "
                            "state dir's existing size, else 256)")
    serve.add_argument("--seed", type=int, default=2012)

    ingest = _subparser(
        sub, "ingest", "ingest one workload: into a resumed snapshot, or "
                       "pushed to a remote gateway with --connect",
        [
            "python -m repro ingest --state-dir state/ --workload scp",
            "python -m repro ingest --state-dir state/ --workload dbench "
            "--intervals 25 --run-seed 7",
            "python -m repro ingest --connect 127.0.0.1:8080 --workload scp",
        ],
    )
    _service_target_arguments(ingest)
    ingest.add_argument("--workload", required=True,
                        choices=sorted(WORKLOAD_FACTORIES))
    ingest.add_argument("--intervals", type=_positive_int, default=10)
    ingest.add_argument("--run-seed", type=int, default=None,
                        help="machine seed for this run (default: auto — "
                             "derived from the service's corpus size; set "
                             "it explicitly when several edges push to one "
                             "gateway concurrently)")
    ingest.add_argument("--seed", type=int, default=2012)

    query = _subparser(
        sub, "query", "run top-k diagnosis (one batched index query for "
                      "all intervals) against a snapshot or a gateway",
        [
            "python -m repro query --state-dir state/ --workload scp",
            "python -m repro query --state-dir state/ --workload kcompile "
            "--intervals 3 --k 10 --metric euclidean",
            "python -m repro query --connect 127.0.0.1:8080 --workload scp "
            "--json",
        ],
    )
    _service_target_arguments(query)
    query.add_argument("--workload", required=True,
                       choices=sorted(WORKLOAD_FACTORIES))
    query.add_argument("--intervals", type=_positive_int, default=5)
    query.add_argument("--k", type=_positive_int, default=5, help="neighbours per query")
    query.add_argument("--metric", default=None,
                       choices=("cosine", "euclidean"),
                       help="scoring metric for in-process mode (default: "
                            "cosine); rejected with --connect — a gateway "
                            "scores with its own configured metric")
    query.add_argument("--seed", type=int, default=2012)
    query.add_argument("--json", action="store_true",
                       help="print the wire-form JSON response "
                            "(stable keys) instead of prose")

    stats = _subparser(
        sub, "stats", "inspect a service: index engine layout and "
                      "snapshot watermark health",
        [
            "python -m repro stats --state-dir state/",
            "python -m repro stats --connect 127.0.0.1:8080 --json",
        ],
    )
    _service_target_arguments(stats)
    stats.add_argument("--seed", type=int, default=2012)
    stats.add_argument("--json", action="store_true",
                       help="print the wire-form JSON response "
                            "(stable keys) instead of prose")
    stats.add_argument("--metrics", action="store_true",
                       help="show the observability snapshot (request "
                            "counters, latency p50/p95/p99 rollups, "
                            "sampled series) instead of the status "
                            "summary; same wire shape in-process and "
                            "over --connect")

    experiment = _subparser(
        sub, "experiment", "regenerate a paper table or figure",
        [
            "python -m repro experiment table1",
            "python -m repro experiment fig4 --seed 2012",
            "python -m repro experiment table4 --fast",
        ],
    )
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument("--seed", type=int, default=2012)
    experiment.add_argument(
        "--fast", action="store_true",
        help="reduced scale (quick sanity run instead of paper scale)",
    )
    return parser


def _cmd_list_workloads(_args) -> int:
    for name in sorted(WORKLOAD_FACTORIES):
        workload = WORKLOAD_FACTORIES[name](0)
        print(f"{name:12s} label={workload.label!r} load={workload.load}")
    return 0


def _parse_workloads(spec: str, seed: int):
    names = [n.strip() for n in spec.split(",") if n.strip()]
    if not names:
        raise SystemExit("no workloads given")
    unknown = [n for n in names if n not in WORKLOAD_FACTORIES]
    if unknown:
        raise SystemExit(
            f"unknown workloads: {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(WORKLOAD_FACTORIES))})"
        )
    return [
        WORKLOAD_FACTORIES[name](seed + i) for i, name in enumerate(names, 1)
    ]


def _cmd_collect(args) -> int:
    from repro.core.database import SignatureDatabase
    from repro.core.pipeline import SignaturePipeline

    workloads = _parse_workloads(args.workloads, args.seed)
    pipeline = SignaturePipeline(
        seed=args.seed, interval_s=args.interval_seconds
    )
    result = pipeline.collect(workloads, args.intervals)
    db = SignatureDatabase(
        result.vocabulary,
        idf=result.model.idf(),
        df=result.model.document_frequencies(),
        corpus_size=result.model.corpus_size,
    )
    db.add_all([sig.unit() for sig in result.signatures])
    db.build_all_syndromes()
    db.save(args.out)
    print(
        f"collected {len(result.signatures)} signatures "
        f"({', '.join(result.labels())}); database -> {args.out}"
    )
    return 0


def _cmd_diagnose(args) -> int:
    from repro.core.corpus import Corpus
    from repro.core.database import SignatureDatabase
    from repro.core.pipeline import SignaturePipeline
    from repro.core.tfidf import TfIdfModel

    db = SignatureDatabase.load(args.db)
    pipeline = SignaturePipeline(seed=args.seed)
    if pipeline.vocabulary != db.vocabulary:
        raise SystemExit(
            "database was built from a different kernel build (vocabulary "
            "fingerprints differ) — signatures are not comparable"
        )
    workload = WORKLOAD_FACTORIES[args.workload](args.seed + 99)
    docs = pipeline.collect_documents(workload, args.intervals, run_seed=99)
    if db.idf is not None or db.df is not None:
        # Transform fresh counts with the same weighting that built the DB.
        model = db.make_model()
    else:
        # Legacy database without idf: fit on the fresh documents only.
        model = TfIdfModel().fit(Corpus(pipeline.vocabulary, docs))
    print(f"diagnosing {len(docs)} intervals of {args.workload!r}:")
    for i, doc in enumerate(docs):
        sig = model.transform(doc).unit()
        syndrome, distance = db.nearest_syndrome(sig)
        votes = db.diagnose(sig, k=args.k)
        vote_text = ", ".join(
            f"{label}={f:.0%}" for label, f in votes.items()
        )
        print(
            f"  interval {i}: nearest={syndrome.label} (d={distance:.3f})"
            f"   votes: {vote_text or 'none'}"
        )
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _parse_hostport(text: str) -> tuple[str, int]:
    from repro.api.client import parse_address

    try:
        return parse_address(text)
    except ValueError as error:
        raise SystemExit(str(error)) from error


def _service_target_arguments(parser) -> None:
    """The two ways a service command reaches its service."""
    parser.add_argument(
        "--state-dir", default=None,
        help="existing sharded snapshot directory (in-process mode)",
    )
    parser.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="talk to a running gateway over HTTP instead of resuming "
             "a local snapshot",
    )


def _make_client(args):
    """A FmeterClient for --connect (validating the mode flags)."""
    from repro.api import FmeterClient

    if args.state_dir is not None:
        raise SystemExit("--state-dir and --connect are mutually exclusive")
    host, port = _parse_hostport(args.connect)
    return FmeterClient(host, port)


def _require_state_dir(args) -> None:
    if args.state_dir is None:
        raise SystemExit(
            "one of --state-dir (in-process) or --connect HOST:PORT "
            "(remote gateway) is required"
        )


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _make_service(
    args,
    interval_s: float = 10.0,
    workers: int = 4,
    require_existing: bool = False,
    shards: int | None = None,
):
    """A MonitorService over ``--state-dir``: resumed if it exists.

    ``require_existing`` refuses to start fresh — for commands whose
    contract is to extend or query an existing snapshot, where silently
    creating an empty state dir would hide a mistyped path.
    """
    import pickle
    import zipfile
    from pathlib import Path

    from repro.core.database import SignatureDatabase
    from repro.core.pipeline import SignaturePipeline
    from repro.service import MonitorService

    pipeline = SignaturePipeline(seed=args.seed, interval_s=interval_s)
    state_dir = Path(args.state_dir)
    header = state_dir / SignatureDatabase.HEADER_FILE
    if header.exists():
        try:
            service = MonitorService.resume(
                pipeline, state_dir, max_workers=workers, shards=shards
            )
        except (
            ValueError,
            KeyError,
            OSError,
            zipfile.BadZipFile,
            pickle.UnpicklingError,
        ) as error:
            raise SystemExit(f"cannot resume {state_dir}: {error}") from error
        print(
            f"resumed snapshot {state_dir}: "
            f"{service.stats()['indexed_signatures']} signatures, "
            f"corpus size {service.model.corpus_size}"
        )
    else:
        if require_existing:
            raise SystemExit(
                f"{state_dir} holds no service snapshot; run "
                "'python -m repro serve' first"
            )
        service = MonitorService(pipeline, max_workers=workers, shards=shards)
        print(f"starting fresh service state in {state_dir}")
    return service, state_dir


def _print_report(report) -> None:
    label_text = ", ".join(
        f"{label}={n}" for label, n in sorted(report.by_label.items())
    )
    drift = (
        f"{report.idf_drift:.4f}"
        if report.idf_drift != float("inf")
        else "initial fit"
    )
    print(
        f"  ingested {report.documents} documents ({label_text}) "
        f"in {report.elapsed_s:.2f}s "
        f"({report.documents_per_second:.1f} docs/s); "
        f"corpus={report.corpus_size}, indexed={report.indexed}, "
        f"idf drift: {drift}"
    )


def _cmd_serve(args) -> int:
    from repro.service import IngestJob

    if args.rounds == 0 and args.listen is None:
        raise SystemExit("--rounds 0 only makes sense with --listen")
    # Validated up front: a typo'd address must not cost the whole
    # collection run before failing.
    listen_address = (
        _parse_hostport(args.listen) if args.listen is not None else None
    )
    service, state_dir = _make_service(
        args, interval_s=args.interval_seconds, workers=args.workers,
        shards=args.shards,
    )
    # The service owns a persistent collection pool; close it however
    # the command ends so worker threads don't outlive the run.
    try:
        server = None
        if listen_address is not None:
            # Bound (not yet serving) before the rounds are paid for: an
            # unresolvable host or occupied port must fail now, cleanly.
            from repro.api import FmeterServer

            host, port = listen_address
            try:
                server = FmeterServer(service, host=host, port=port,
                                      state_dir=state_dir)
            except OSError as error:
                raise SystemExit(
                    f"cannot bind gateway on {args.listen}: {error}"
                ) from error
        workloads = args.workloads
        for round_no in range(1, args.rounds + 1):
            jobs = [
                IngestJob(workload, args.intervals)
                for workload in _parse_workloads(
                    workloads, args.seed + 1000 * round_no
                )
            ]
            print(f"round {round_no}/{args.rounds}:")
            _print_report(service.ingest(jobs))
            written = service.snapshot(state_dir, shard_size=args.shard_size)
            print(f"  snapshot -> {state_dir} ({len(written)} files written)")
        stats = service.stats()
        print(
            f"service state: {stats['indexed_signatures']} signatures across "
            f"labels {', '.join(stats['labels']) or 'none'}"
        )
        if server is not None:
            # A thread-per-request gateway convoys on the interpreter's
            # default 5ms GIL switch interval: one CPU-bound handler can
            # hold every other runnable thread for whole quanta, and the
            # request tail inflates by an order of magnitude under load
            # (measured in benchmarks/test_gateway_overload.py).  1ms
            # trades a sliver of raw throughput for a bounded tail.
            sys.setswitchinterval(1e-3)
            # The warm index is long-lived and acyclic; freezing it
            # keeps generational GC from re-walking millions of posting
            # objects on every collection triggered by request-handling
            # allocations (~100KB of parsed JSON per query) — those
            # sweeps surface as multi-ms pauses in the admitted tail.
            import gc

            gc.collect()
            gc.freeze()
            # SIGTERM (the orchestrator's stop signal) triggers the
            # same drain-then-stop path as ^C.  close() must not run on
            # this thread — serve_forever blocks it, and the signal
            # handler executes here too — so a helper thread drains
            # while serve_forever keeps answering until shutdown.
            import signal
            import threading

            def _drain_and_stop(signum, frame):
                print("SIGTERM; draining", flush=True)
                threading.Thread(
                    target=server.close,
                    kwargs={"drain_s": args.drain_s},
                    name="fmeter-drain",
                    daemon=True,
                ).start()

            # Signal handlers are a main-thread affair; embedders
            # driving main() from a worker thread still get ^C/finally
            # draining, just not SIGTERM.
            on_main = threading.current_thread() is threading.main_thread()
            previous_handler = (
                signal.signal(signal.SIGTERM, _drain_and_stop)
                if on_main
                else None
            )
            # The bound port is known once the socket exists — print it
            # (and flush) before blocking, so wrappers can parse it.
            print(f"gateway listening on http://{server.host}:{server.port}",
                  flush=True)
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                print("interrupted; shutting down")
            finally:
                if on_main:
                    signal.signal(signal.SIGTERM, previous_handler)
                server.close(drain_s=args.drain_s)
                if service.model.fitted:
                    written = service.snapshot(state_dir)
                    print(
                        f"final snapshot -> {state_dir} "
                        f"({len(written)} files written)"
                    )
        return 0
    finally:
        service.close()


def _cmd_ingest(args) -> int:
    if args.connect is not None:
        # Thin-client mode: collect at this edge, push over HTTP.
        from repro.api.errors import ApiError, BAD_SNAPSHOT
        from repro.core.pipeline import SignaturePipeline

        client = _make_client(args)
        run_seed = args.run_seed
        if run_seed is None:
            # Mirror the in-process auto-advance: seed past anything
            # the service has ingested, so repeated pushes collect from
            # fresh machines instead of replaying identical runs.
            run_seed = client.stats().corpus_size + 1
        pipeline = SignaturePipeline(seed=args.seed)
        workload = WORKLOAD_FACTORIES[args.workload](args.seed)
        docs = pipeline.collect_documents(
            workload, args.intervals, run_seed=run_seed
        )
        print(
            f"pushing {len(docs)} intervals of {args.workload!r} "
            f"to {client.base_url} (run seed {run_seed})"
        )
        _print_report(client.ingest(docs))
        try:
            snapshot = client.snapshot()
        except ApiError as error:
            if error.code != BAD_SNAPSHOT:
                raise
            # The ingest itself succeeded; a gateway without a state
            # directory simply cannot persist it from here.
            print("gateway has no state directory; snapshot skipped")
        else:
            print(
                f"snapshot -> {snapshot.directory} "
                f"({len(snapshot.written)} files written)"
            )
        return 0

    from repro.service import IngestJob

    _require_state_dir(args)
    service, state_dir = _make_service(args, require_existing=True)
    with service:  # shuts the collection pool down on the way out
        workload = WORKLOAD_FACTORIES[args.workload](args.seed)
        report = service.ingest(
            [IngestJob(workload, args.intervals, run_seed=args.run_seed)]
        )
        _print_report(report)
        written = service.snapshot(state_dir)
        print(f"snapshot -> {state_dir} ({len(written)} files written)")
    return 0


def _collect_query_documents(args, pipeline):
    workload = WORKLOAD_FACTORIES[args.workload](args.seed + 99)
    return pipeline.collect_documents(workload, args.intervals, run_seed=99)


def _cmd_query(args) -> int:
    import json as json_module

    if args.connect is not None:
        from repro.core.pipeline import SignaturePipeline

        if args.metric is not None:
            # Silently returning the server's metric while the user
            # asked for another would be wrong results, not a nicety.
            raise SystemExit(
                "--metric applies to in-process scoring only; a gateway "
                "scores every query with its own configured metric "
                "(check `stats --connect`)"
            )
        client = _make_client(args)
        pipeline = SignaturePipeline(seed=args.seed)
        docs = _collect_query_documents(args, pipeline)
        response = client.query_batch(docs, k=args.k)
    else:
        from repro.api import Dispatcher, QueryBatchRequest, WireDocument

        _require_state_dir(args)
        service, _state_dir = _make_service(args, require_existing=True)
        service.metric = args.metric or "cosine"
        docs = _collect_query_documents(args, service.pipeline)
        response = Dispatcher(service).handle(
            QueryBatchRequest(
                documents=tuple(
                    WireDocument.from_document(doc) for doc in docs
                ),
                k=args.k,
            )
        )
    if args.json:
        print(json_module.dumps(response.to_wire(), indent=2))
        return 0
    print(f"querying {len(docs)} intervals of {args.workload!r} (top-{args.k}):")
    for i, diagnosis in enumerate(response.diagnoses):
        vote_text = ", ".join(
            f"{label}={f:.0%}" for label, f in diagnosis.votes.items()
        )
        nearest = diagnosis.hits[0] if diagnosis.hits else None
        nearest_text = (
            f"id={nearest.signature_id} label={nearest.label} "
            f"score={nearest.score:.4f}"
            if nearest
            else "none"
        )
        print(
            f"  interval {i}: nearest: {nearest_text}   "
            f"votes: {vote_text or 'none'}"
        )
    return 0


def _cmd_stats(args) -> int:
    import json as json_module

    if args.connect is not None:
        client = _make_client(args)
        response = (
            client.metrics() if args.metrics else client.stats()
        )
        source = client.base_url
    else:
        from repro.api import Dispatcher, StatsRequest

        _require_state_dir(args)
        service, state_dir = _make_service(args, require_existing=True)
        dispatcher = Dispatcher(service)
        response = (
            dispatcher.metrics()
            if args.metrics
            else dispatcher.handle(StatsRequest())
        )
        source = str(state_dir)
    if args.json:
        print(json_module.dumps(response.to_wire(), indent=2))
        return 0
    if args.metrics:
        return _print_metrics(response, source)
    print(f"service snapshot {source}:")
    print(f"  corpus size:          {response.corpus_size}")
    print(f"  indexed signatures:   {response.indexed_signatures}")
    print(f"  labels:               {', '.join(response.labels) or 'none'}")
    print("scoring engine:")
    print(f"  compiled postings:    {response.index_compiled_postings}")
    print(f"  tail postings:        {response.index_tail_postings}")
    print(f"  tombstones:           {response.index_tombstones}")
    shards_text = (
        str(response.index_shards)
        if response.index_shards is not None
        else "unknown (pre-shard server)"
    )
    print(f"  query shards:         {shards_text}")
    print("snapshot layout:")
    print(f"  shard size:           {response.snapshot_shard_size}")
    print(f"  generation:           {response.snapshot_generation}")
    print(
        f"  verified watermark:   {response.snapshot_watermark_shards} "
        "full shard(s) skipped on re-snapshot"
    )
    return 0


def _print_metrics(response, source: str) -> int:
    """The prose view of a MetricsResponse (same shape both transports)."""

    def label_text(labels) -> str:
        if not labels:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"

    print(f"metrics for {source} (uptime {response.uptime_s:.1f}s):")
    print("counters:")
    if not response.counters:
        print("  none")
    for counter in response.counters:
        print(
            f"  {counter.name}{label_text(counter.labels)}: {counter.value}"
        )
    print("events (window-exact p50/p95/p99 over the retained tail):")
    if not response.events:
        print("  none")
    for event in response.events:
        print(
            f"  {event.name}{label_text(event.labels)}: "
            f"n={event.count} rate={event.rate_per_s:.2f}/s "
            f"p50={event.p50:.3f} p95={event.p95:.3f} "
            f"p99={event.p99:.3f} max={event.max:.3f}"
        )
    print("sampled series (latest point):")
    if not response.samples:
        print("  none")
    for series in response.samples:
        print(
            f"  {series.name}: {series.last:g} "
            f"({series.n} point(s) @ {series.interval_s:g}s)"
        )
    return 0


def _cmd_experiment(args) -> int:
    name, fast, seed = args.name, args.fast, args.seed
    if name == "fig1":
        from repro.experiments import fig1_bootup

        result = fig1_bootup.run(seed=seed)
        print(result.table().render())
        print()
        print(result.plot())
    elif name == "table1":
        from repro.experiments import table1_lmbench

        print(table1_lmbench.run(
            seed=seed, iterations=10 if fast else 40
        ).table().render())
    elif name == "table2":
        from repro.experiments import table2_apachebench

        print(table2_apachebench.run(
            seed=seed, repetitions=4 if fast else 16
        ).table().render())
    elif name == "table3":
        from repro.experiments import table3_kcompile

        print(table3_kcompile.run(seed=seed).table().render())
    elif name == "table4":
        from repro.experiments import table4_svm_workloads

        print(table4_svm_workloads.run(
            seed=seed,
            intervals_per_workload=30 if fast else 230,
            k_folds=5 if fast else 10,
        ).table().render())
    elif name == "table5":
        from repro.experiments import table5_svm_myri10ge

        print(table5_svm_myri10ge.run(
            seed=seed,
            intervals_per_variant=24 if fast else 80,
            k_folds=4 if fast else 8,
        ).table().render())
    elif name == "fig4":
        from repro.experiments import fig4_dendrogram

        result = fig4_dendrogram.run(seed=seed)
        print(result.table().render())
    elif name == "fig5":
        from repro.experiments import fig5_purity_samples

        print(fig5_purity_samples.run(
            seed=seed,
            sample_counts=(10, 20, 28) if fast else (20, 60, 100, 140, 180, 220),
            runs=4 if fast else 12,
        ).table().render())
    elif name == "fig6":
        from repro.experiments import fig6_purity_k

        print(fig6_purity_k.run(
            seed=seed,
            k_values=(2, 4, 8) if fast else tuple(range(2, 21)),
            sample_counts=(20,) if fast else (60, 140, 220),
            runs=4 if fast else 12,
        ).table().render())
    elif name == "retrieval":
        from repro.experiments import retrieval

        print(retrieval.run(
            seed=seed, intervals_per_workload=20 if fast else 50
        ).table().render())
    elif name == "classifiers":
        from repro.experiments import ablations

        print(ablations.run_classifier_comparison(
            seed=seed, intervals_per_workload=20 if fast else 40
        ).table.render())
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {name!r}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list-workloads": _cmd_list_workloads,
        "collect": _cmd_collect,
        "diagnose": _cmd_diagnose,
        "serve": _cmd_serve,
        "ingest": _cmd_ingest,
        "query": _cmd_query,
        "stats": _cmd_stats,
        "experiment": _cmd_experiment,
    }
    try:
        handler = handlers[args.command]
    except KeyError:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown command {args.command!r}") from None
    try:
        return handler(args)
    except Exception as error:
        # Imported only on the failure path, so non-service commands
        # never pull the API/service layers just to run.
        from repro.api.errors import ApiError
        from repro.service.monitor import ServiceError

        if not isinstance(error, (ApiError, ServiceError)):
            raise
        # Service/API failures are expected operational outcomes, not
        # crashes: one structured line on stderr, nonzero exit code.
        print(f"error [{error.code}]: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
