"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list-workloads``
    Show the available workload models.
``collect``
    Run workloads under Fmeter, build a labeled signature database, and
    save it to a ``.npz`` file.
``diagnose``
    Collect fresh signatures from one workload and diagnose them against
    a saved database (nearest syndrome + k-NN vote).
``serve``
    Run the monitoring service for a number of ingestion rounds:
    concurrent collection, incremental tf-idf, sharded snapshots.
``ingest``
    Resume a service snapshot and fold more signatures into it.
``query``
    Resume a service snapshot and run top-k diagnosis queries against it
    (all intervals are diagnosed as one batched index query).
``stats``
    Inspect a service snapshot: index engine layout (compiled CSR
    postings, tail, tombstones) and snapshot watermark health.
``experiment``
    Regenerate a paper table or figure and print it.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["build_parser", "main"]

#: Workload name -> factory (seed) -> Workload.
WORKLOAD_FACTORIES = {
    "scp": lambda seed: _workloads().ScpWorkload(seed=seed),
    "kcompile": lambda seed: _workloads().KernelCompileWorkload(seed=seed),
    "dbench": lambda seed: _workloads().DbenchWorkload(seed=seed),
    "idle": lambda seed: _workloads().IdleWorkload(seed=seed),
    "apachebench": lambda seed: _workloads().ApacheBenchWorkload(seed=seed),
}

EXPERIMENTS = (
    "fig1", "table1", "table2", "table3", "table4", "table5",
    "fig4", "fig5", "fig6", "retrieval", "classifiers",
)


def _workloads():
    import repro.workloads as w

    return w


def _subparser(sub, name: str, help_text: str, examples: list[str]):
    """A subcommand with a usage-example epilog on ``--help``."""
    epilog = "examples:\n" + "\n".join(f"  {line}" for line in examples)
    return sub.add_parser(
        name,
        help=help_text,
        epilog=epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fmeter reproduction (Middleware 2012): collect, "
                    "diagnose, serve, and regenerate the paper's "
                    "experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _subparser(
        sub, "list-workloads", "list available workload models",
        ["python -m repro list-workloads"],
    )

    collect = _subparser(
        sub, "collect", "collect signatures and save a labeled database",
        [
            "python -m repro collect --out db.npz",
            "python -m repro collect --workloads scp,idle --intervals 40 "
            "--out db.npz",
        ],
    )
    collect.add_argument(
        "--workloads", default="scp,kcompile,dbench",
        help="comma-separated workload names (default: scp,kcompile,dbench)",
    )
    collect.add_argument("--intervals", type=int, default=20,
                         help="logging intervals per workload")
    collect.add_argument("--interval-seconds", type=float, default=10.0)
    collect.add_argument("--seed", type=int, default=2012)
    collect.add_argument("--out", required=True, help="output .npz path")

    diagnose = _subparser(
        sub, "diagnose", "diagnose fresh signatures against a saved database",
        [
            "python -m repro diagnose --db db.npz --workload scp",
            "python -m repro diagnose --db db.npz --workload dbench "
            "--intervals 10 --k 7",
        ],
    )
    diagnose.add_argument("--db", required=True, help="database .npz path")
    diagnose.add_argument("--workload", required=True,
                          choices=sorted(WORKLOAD_FACTORIES))
    diagnose.add_argument("--intervals", type=int, default=5)
    diagnose.add_argument("--seed", type=int, default=2012)
    diagnose.add_argument("--k", type=int, default=5, help="k-NN votes")

    serve = _subparser(
        sub, "serve", "run the monitoring service: concurrent ingestion "
                      "rounds with incremental tf-idf and sharded snapshots",
        [
            "python -m repro serve --state-dir state/",
            "python -m repro serve --state-dir state/ --workloads scp,idle "
            "--rounds 3 --intervals 10 --workers 8",
        ],
    )
    serve.add_argument(
        "--state-dir", required=True,
        help="sharded snapshot directory (created or resumed)",
    )
    serve.add_argument(
        "--workloads", default="scp,kcompile,dbench",
        help="comma-separated workload names ingested each round",
    )
    serve.add_argument("--rounds", type=_positive_int, default=2,
                       help="ingestion rounds (one snapshot per round)")
    serve.add_argument("--intervals", type=_positive_int, default=10,
                       help="logging intervals per workload per round")
    serve.add_argument("--interval-seconds", type=_positive_float, default=10.0)
    serve.add_argument("--workers", type=_positive_int, default=4,
                       help="collection thread-pool size")
    serve.add_argument("--shard-size", type=_positive_int, default=None,
                       help="signatures per snapshot shard (default: the "
                            "state dir's existing size, else 256)")
    serve.add_argument("--seed", type=int, default=2012)

    ingest = _subparser(
        sub, "ingest", "resume a service snapshot and ingest one workload",
        [
            "python -m repro ingest --state-dir state/ --workload scp",
            "python -m repro ingest --state-dir state/ --workload dbench "
            "--intervals 25 --run-seed 7",
        ],
    )
    ingest.add_argument("--state-dir", required=True,
                        help="existing sharded snapshot directory")
    ingest.add_argument("--workload", required=True,
                        choices=sorted(WORKLOAD_FACTORIES))
    ingest.add_argument("--intervals", type=_positive_int, default=10)
    ingest.add_argument("--run-seed", type=int, default=None,
                        help="machine seed for this run (default: auto)")
    ingest.add_argument("--seed", type=int, default=2012)

    query = _subparser(
        sub, "query", "resume a service snapshot and run top-k diagnosis "
                      "(one batched index query for all intervals)",
        [
            "python -m repro query --state-dir state/ --workload scp",
            "python -m repro query --state-dir state/ --workload kcompile "
            "--intervals 3 --k 10 --metric euclidean",
        ],
    )
    query.add_argument("--state-dir", required=True,
                       help="existing sharded snapshot directory")
    query.add_argument("--workload", required=True,
                       choices=sorted(WORKLOAD_FACTORIES))
    query.add_argument("--intervals", type=_positive_int, default=5)
    query.add_argument("--k", type=_positive_int, default=5, help="neighbours per query")
    query.add_argument("--metric", default="cosine",
                       choices=("cosine", "euclidean"))
    query.add_argument("--seed", type=int, default=2012)

    stats = _subparser(
        sub, "stats", "inspect a service snapshot: index engine layout "
                      "and snapshot watermark health",
        [
            "python -m repro stats --state-dir state/",
        ],
    )
    stats.add_argument("--state-dir", required=True,
                       help="existing sharded snapshot directory")
    stats.add_argument("--seed", type=int, default=2012)

    experiment = _subparser(
        sub, "experiment", "regenerate a paper table or figure",
        [
            "python -m repro experiment table1",
            "python -m repro experiment fig4 --seed 2012",
            "python -m repro experiment table4 --fast",
        ],
    )
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument("--seed", type=int, default=2012)
    experiment.add_argument(
        "--fast", action="store_true",
        help="reduced scale (quick sanity run instead of paper scale)",
    )
    return parser


def _cmd_list_workloads(_args) -> int:
    for name in sorted(WORKLOAD_FACTORIES):
        workload = WORKLOAD_FACTORIES[name](0)
        print(f"{name:12s} label={workload.label!r} load={workload.load}")
    return 0


def _parse_workloads(spec: str, seed: int):
    names = [n.strip() for n in spec.split(",") if n.strip()]
    if not names:
        raise SystemExit("no workloads given")
    unknown = [n for n in names if n not in WORKLOAD_FACTORIES]
    if unknown:
        raise SystemExit(
            f"unknown workloads: {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(WORKLOAD_FACTORIES))})"
        )
    return [
        WORKLOAD_FACTORIES[name](seed + i) for i, name in enumerate(names, 1)
    ]


def _cmd_collect(args) -> int:
    from repro.core.database import SignatureDatabase
    from repro.core.pipeline import SignaturePipeline

    workloads = _parse_workloads(args.workloads, args.seed)
    pipeline = SignaturePipeline(
        seed=args.seed, interval_s=args.interval_seconds
    )
    result = pipeline.collect(workloads, args.intervals)
    db = SignatureDatabase(
        result.vocabulary,
        idf=result.model.idf(),
        df=result.model.document_frequencies(),
        corpus_size=result.model.corpus_size,
    )
    db.add_all([sig.unit() for sig in result.signatures])
    db.build_all_syndromes()
    db.save(args.out)
    print(
        f"collected {len(result.signatures)} signatures "
        f"({', '.join(result.labels())}); database -> {args.out}"
    )
    return 0


def _cmd_diagnose(args) -> int:
    from repro.core.corpus import Corpus
    from repro.core.database import SignatureDatabase
    from repro.core.pipeline import SignaturePipeline
    from repro.core.tfidf import TfIdfModel

    db = SignatureDatabase.load(args.db)
    pipeline = SignaturePipeline(seed=args.seed)
    if pipeline.vocabulary != db.vocabulary:
        raise SystemExit(
            "database was built from a different kernel build (vocabulary "
            "fingerprints differ) — signatures are not comparable"
        )
    workload = WORKLOAD_FACTORIES[args.workload](args.seed + 99)
    docs = pipeline.collect_documents(workload, args.intervals, run_seed=99)
    if db.idf is not None or db.df is not None:
        # Transform fresh counts with the same weighting that built the DB.
        model = db.make_model()
    else:
        # Legacy database without idf: fit on the fresh documents only.
        model = TfIdfModel().fit(Corpus(pipeline.vocabulary, docs))
    print(f"diagnosing {len(docs)} intervals of {args.workload!r}:")
    for i, doc in enumerate(docs):
        sig = model.transform(doc).unit()
        syndrome, distance = db.nearest_syndrome(sig)
        votes = db.diagnose(sig, k=args.k)
        vote_text = ", ".join(
            f"{label}={f:.0%}" for label, f in votes.items()
        )
        print(
            f"  interval {i}: nearest={syndrome.label} (d={distance:.3f})"
            f"   votes: {vote_text or 'none'}"
        )
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _make_service(
    args,
    interval_s: float = 10.0,
    workers: int = 4,
    require_existing: bool = False,
):
    """A MonitorService over ``--state-dir``: resumed if it exists.

    ``require_existing`` refuses to start fresh — for commands whose
    contract is to extend or query an existing snapshot, where silently
    creating an empty state dir would hide a mistyped path.
    """
    import pickle
    import zipfile
    from pathlib import Path

    from repro.core.database import SignatureDatabase
    from repro.core.pipeline import SignaturePipeline
    from repro.service import MonitorService

    pipeline = SignaturePipeline(seed=args.seed, interval_s=interval_s)
    state_dir = Path(args.state_dir)
    header = state_dir / SignatureDatabase.HEADER_FILE
    if header.exists():
        try:
            service = MonitorService.resume(
                pipeline, state_dir, max_workers=workers
            )
        except (
            ValueError,
            KeyError,
            OSError,
            zipfile.BadZipFile,
            pickle.UnpicklingError,
        ) as error:
            raise SystemExit(f"cannot resume {state_dir}: {error}") from error
        print(
            f"resumed snapshot {state_dir}: "
            f"{service.stats()['indexed_signatures']} signatures, "
            f"corpus size {service.model.corpus_size}"
        )
    else:
        if require_existing:
            raise SystemExit(
                f"{state_dir} holds no service snapshot; run "
                "'python -m repro serve' first"
            )
        service = MonitorService(pipeline, max_workers=workers)
        print(f"starting fresh service state in {state_dir}")
    return service, state_dir


def _print_report(report) -> None:
    label_text = ", ".join(
        f"{label}={n}" for label, n in sorted(report.by_label.items())
    )
    drift = (
        f"{report.idf_drift:.4f}"
        if report.idf_drift != float("inf")
        else "initial fit"
    )
    print(
        f"  ingested {report.documents} documents ({label_text}) "
        f"in {report.elapsed_s:.2f}s "
        f"({report.documents_per_second:.1f} docs/s); "
        f"corpus={report.corpus_size}, indexed={report.indexed}, "
        f"idf drift: {drift}"
    )


def _cmd_serve(args) -> int:
    from repro.service import IngestJob

    service, state_dir = _make_service(
        args, interval_s=args.interval_seconds, workers=args.workers
    )
    workloads = args.workloads
    for round_no in range(1, args.rounds + 1):
        jobs = [
            IngestJob(workload, args.intervals)
            for workload in _parse_workloads(
                workloads, args.seed + 1000 * round_no
            )
        ]
        print(f"round {round_no}/{args.rounds}:")
        _print_report(service.ingest(jobs))
        written = service.snapshot(state_dir, shard_size=args.shard_size)
        print(f"  snapshot -> {state_dir} ({len(written)} files written)")
    stats = service.stats()
    print(
        f"service state: {stats['indexed_signatures']} signatures across "
        f"labels {', '.join(stats['labels'])}"
    )
    return 0


def _cmd_ingest(args) -> int:
    from repro.service import IngestJob

    service, state_dir = _make_service(args, require_existing=True)
    workload = WORKLOAD_FACTORIES[args.workload](args.seed)
    report = service.ingest(
        [IngestJob(workload, args.intervals, run_seed=args.run_seed)]
    )
    _print_report(report)
    written = service.snapshot(state_dir)
    print(f"snapshot -> {state_dir} ({len(written)} files written)")
    return 0


def _cmd_query(args) -> int:
    service, _state_dir = _make_service(args, require_existing=True)
    service.metric = args.metric
    workload = WORKLOAD_FACTORIES[args.workload](args.seed + 99)
    docs = service.pipeline.collect_documents(
        workload, args.intervals, run_seed=99
    )
    print(f"querying {len(docs)} intervals of {args.workload!r} (top-{args.k}):")
    for i, result in enumerate(service.query_batch(docs, k=args.k)):
        vote_text = ", ".join(
            f"{label}={f:.0%}" for label, f in result.votes.items()
        )
        nearest = result.results[0] if result.results else None
        nearest_text = (
            f"id={nearest.signature_id} label={nearest.signature.label} "
            f"score={nearest.score:.4f}"
            if nearest
            else "none"
        )
        print(
            f"  interval {i}: nearest: {nearest_text}   "
            f"votes: {vote_text or 'none'}"
        )
    return 0


def _cmd_stats(args) -> int:
    service, state_dir = _make_service(args, require_existing=True)
    stats = service.stats()
    print(f"service snapshot {state_dir}:")
    print(f"  corpus size:          {stats['corpus_size']}")
    print(f"  indexed signatures:   {stats['indexed_signatures']}")
    print(f"  labels:               {', '.join(stats['labels']) or 'none'}")
    print("scoring engine:")
    print(f"  compiled postings:    {stats['index_compiled_postings']}")
    print(f"  tail postings:        {stats['index_tail_postings']}")
    print(f"  tombstones:           {stats['index_tombstones']}")
    print("snapshot layout:")
    print(f"  shard size:           {stats['snapshot_shard_size']}")
    print(f"  generation:           {stats['snapshot_generation']}")
    print(
        f"  verified watermark:   {stats['snapshot_watermark_shards']} "
        "full shard(s) skipped on re-snapshot"
    )
    return 0


def _cmd_experiment(args) -> int:
    name, fast, seed = args.name, args.fast, args.seed
    if name == "fig1":
        from repro.experiments import fig1_bootup

        result = fig1_bootup.run(seed=seed)
        print(result.table().render())
        print()
        print(result.plot())
    elif name == "table1":
        from repro.experiments import table1_lmbench

        print(table1_lmbench.run(
            seed=seed, iterations=10 if fast else 40
        ).table().render())
    elif name == "table2":
        from repro.experiments import table2_apachebench

        print(table2_apachebench.run(
            seed=seed, repetitions=4 if fast else 16
        ).table().render())
    elif name == "table3":
        from repro.experiments import table3_kcompile

        print(table3_kcompile.run(seed=seed).table().render())
    elif name == "table4":
        from repro.experiments import table4_svm_workloads

        print(table4_svm_workloads.run(
            seed=seed,
            intervals_per_workload=30 if fast else 230,
            k_folds=5 if fast else 10,
        ).table().render())
    elif name == "table5":
        from repro.experiments import table5_svm_myri10ge

        print(table5_svm_myri10ge.run(
            seed=seed,
            intervals_per_variant=24 if fast else 80,
            k_folds=4 if fast else 8,
        ).table().render())
    elif name == "fig4":
        from repro.experiments import fig4_dendrogram

        result = fig4_dendrogram.run(seed=seed)
        print(result.table().render())
    elif name == "fig5":
        from repro.experiments import fig5_purity_samples

        print(fig5_purity_samples.run(
            seed=seed,
            sample_counts=(10, 20, 28) if fast else (20, 60, 100, 140, 180, 220),
            runs=4 if fast else 12,
        ).table().render())
    elif name == "fig6":
        from repro.experiments import fig6_purity_k

        print(fig6_purity_k.run(
            seed=seed,
            k_values=(2, 4, 8) if fast else tuple(range(2, 21)),
            sample_counts=(20,) if fast else (60, 140, 220),
            runs=4 if fast else 12,
        ).table().render())
    elif name == "retrieval":
        from repro.experiments import retrieval

        print(retrieval.run(
            seed=seed, intervals_per_workload=20 if fast else 50
        ).table().render())
    elif name == "classifiers":
        from repro.experiments import ablations

        print(ablations.run_classifier_comparison(
            seed=seed, intervals_per_workload=20 if fast else 40
        ).table.render())
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {name!r}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list-workloads": _cmd_list_workloads,
        "collect": _cmd_collect,
        "diagnose": _cmd_diagnose,
        "serve": _cmd_serve,
        "ingest": _cmd_ingest,
        "query": _cmd_query,
        "stats": _cmd_stats,
        "experiment": _cmd_experiment,
    }
    try:
        handler = handlers[args.command]
    except KeyError:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown command {args.command!r}") from None
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
