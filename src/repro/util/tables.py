"""ASCII table rendering for experiment output.

All reproduction harnesses print paper-style tables through these helpers so
`benchmarks/` output lines up visually with the tables in the paper.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_row", "render_table"]


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_row(cells: Sequence, widths: Sequence[int]) -> str:
    """Format one row with left-aligned first column, right-aligned rest."""
    parts = []
    for i, (cell, width) in enumerate(zip(cells, widths)):
        text = _cell(cell)
        parts.append(text.ljust(width) if i == 0 else text.rjust(width))
    return "  ".join(parts)


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None) -> str:
    """Render a list of rows as a fixed-width ASCII table.

    ``rows`` may contain strings, ints, or floats; floats print with three
    decimals.  Returns the table as a single string (no trailing newline).
    """
    str_rows = [[_cell(c) for c in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells, expected {ncols}: {row!r}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(ncols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(headers, widths))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(format_row(row, widths))
    return "\n".join(lines)
