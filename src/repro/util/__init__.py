"""Shared utilities: seeded RNG streams, statistics helpers, table rendering.

These helpers are deliberately dependency-light; everything in :mod:`repro`
that needs randomness or pretty-printed experiment output goes through this
package so that experiments are reproducible and tables render uniformly.
"""

from repro.util.rng import RngStream, derive_seed, spawn_rng
from repro.util.stats import (
    MeanSem,
    mean,
    mean_sem,
    sample_stdev,
    standard_error,
    summarize,
)
from repro.util.tables import format_row, render_table

__all__ = [
    "MeanSem",
    "RngStream",
    "derive_seed",
    "format_row",
    "mean",
    "mean_sem",
    "render_table",
    "sample_stdev",
    "spawn_rng",
    "standard_error",
    "summarize",
]
