"""Small statistics helpers used by experiments and benchmarks.

The paper reports averages with the standard error of the mean (SEM); these
helpers centralize that so all tables are computed the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "MeanSem",
    "mean",
    "mean_sem",
    "sample_stdev",
    "standard_error",
    "summarize",
]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean. Raises ``ValueError`` on an empty input."""
    data = list(values)
    if not data:
        raise ValueError("mean() of empty sequence")
    return sum(data) / len(data)


def sample_stdev(values: Iterable[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for a single observation."""
    data = list(values)
    if not data:
        raise ValueError("sample_stdev() of empty sequence")
    if len(data) == 1:
        return 0.0
    mu = mean(data)
    var = sum((x - mu) ** 2 for x in data) / (len(data) - 1)
    return math.sqrt(var)


def standard_error(values: Iterable[float]) -> float:
    """Standard error of the mean: s / sqrt(n)."""
    data = list(values)
    if not data:
        raise ValueError("standard_error() of empty sequence")
    return sample_stdev(data) / math.sqrt(len(data))


@dataclass(frozen=True)
class MeanSem:
    """A mean together with its standard error, as the paper reports."""

    mean: float
    sem: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3f}±{self.sem:.3f}"

    def format(self, digits: int = 3) -> str:
        return f"{self.mean:.{digits}f}±{self.sem:.{digits}f}"


def mean_sem(values: Iterable[float]) -> MeanSem:
    """Compute mean and SEM in one pass over a concrete list."""
    data = list(values)
    return MeanSem(mean=mean(data), sem=standard_error(data), n=len(data))


def summarize(values: Sequence[float]) -> dict:
    """Mean/stdev/sem/min/max summary dictionary for ad-hoc reporting."""
    if not values:
        raise ValueError("summarize() of empty sequence")
    return {
        "n": len(values),
        "mean": mean(values),
        "stdev": sample_stdev(values),
        "sem": standard_error(values),
        "min": min(values),
        "max": max(values),
    }
