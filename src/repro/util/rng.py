"""Deterministic random-number management.

Every stochastic component in the reproduction takes an explicit seed so
experiments regenerate identical tables.  Components that need several
independent streams (e.g. one per simulated CPU, one per workload phase)
derive child seeds from a parent seed plus a string key, which keeps streams
decoupled: adding a new consumer does not shift the draws seen by existing
consumers, unlike sharing a single ``numpy.random.Generator``.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStream", "derive_seed", "spawn_rng"]

_MASK_63 = (1 << 63) - 1


def derive_seed(parent_seed: int, key: str) -> int:
    """Derive a stable child seed from ``parent_seed`` and a string ``key``.

    The derivation hashes the pair with BLAKE2b, so distinct keys yield
    statistically independent seeds and the mapping is stable across runs,
    platforms, and Python versions (unlike the builtin ``hash``).
    """
    digest = hashlib.blake2b(
        f"{parent_seed}:{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & _MASK_63


def spawn_rng(parent_seed: int, key: str) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for ``key``."""
    return np.random.default_rng(derive_seed(parent_seed, key))


class RngStream:
    """A named tree of deterministic random generators.

    A stream wraps one :class:`numpy.random.Generator` and can ``child()``
    off independent sub-streams by key.  Typical use::

        root = RngStream(seed=42)
        boot = root.child("boot")
        cpu0 = boot.child("cpu:0")

    Two streams with the same (seed, path) always produce the same draws.
    """

    def __init__(self, seed: int, path: str = "root"):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self.path = path
        self.generator = np.random.default_rng(derive_seed(seed, path))

    def child(self, key: str) -> "RngStream":
        """Return an independent child stream identified by ``key``."""
        return RngStream(self.seed, f"{self.path}/{key}")

    # Convenience passthroughs ------------------------------------------------

    def integers(self, low: int, high: int | None = None, size=None):
        return self.generator.integers(low, high, size=size)

    def random(self, size=None):
        return self.generator.random(size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self.generator.normal(loc, scale, size)

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0, size=None):
        return self.generator.lognormal(mean, sigma, size)

    def poisson(self, lam: float, size=None):
        return self.generator.poisson(lam, size)

    def choice(self, a, size=None, replace=True, p=None):
        return self.generator.choice(a, size=size, replace=replace, p=p)

    def shuffle(self, x) -> None:
        self.generator.shuffle(x)

    def permutation(self, x):
        return self.generator.permutation(x)

    def __repr__(self) -> str:
        return f"RngStream(seed={self.seed}, path={self.path!r})"
