"""End-to-end signature collection: machine + workload -> corpus -> signatures.

:class:`SignaturePipeline` wires the full paper stack together: it boots a
simulated machine per workload (all machines share one kernel build, i.e.
one symbol table and call graph), attaches an Fmeter tracer, loads any
module the workload depends on, runs the logging daemon for the requested
number of intervals, pools the documents into one corpus, and fits the
tf-idf model — producing the labeled signatures the evaluation sections
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.corpus import Corpus
from repro.core.signature import Signature
from repro.core.tfidf import TfIdfModel
from repro.core.vocabulary import Vocabulary
from repro.kernel.callgraph import CallGraph
from repro.kernel.machine import MachineConfig, SimulatedMachine
from repro.kernel.symbols import build_symbol_table

__all__ = ["CollectionResult", "SignaturePipeline"]


@dataclass
class CollectionResult:
    """Everything a collection run produces."""

    vocabulary: Vocabulary
    corpus: Corpus
    model: TfIdfModel
    signatures: list[Signature] = field(default_factory=list)

    def signatures_with_label(self, label: str) -> list[Signature]:
        return [sig for sig in self.signatures if sig.label == label]

    def labels(self) -> list[str]:
        seen: dict[str, None] = {}
        for sig in self.signatures:
            if sig.label is not None:
                seen.setdefault(sig.label, None)
        return list(seen)


class SignaturePipeline:
    """Collect labeled tf-idf signatures from a set of workloads."""

    def __init__(
        self,
        seed: int = 2012,
        n_cpus: int = 16,
        interval_s: float = 10.0,
        use_idf: bool = True,
        normalize_tf: bool = True,
        self_interference: bool = True,
        count_dispersion: float = 0.12,
    ):
        self.seed = seed
        self.interval_s = interval_s
        self.use_idf = use_idf
        self.normalize_tf = normalize_tf
        self.self_interference = self_interference
        self.machine_config = MachineConfig(
            n_cpus=n_cpus, seed=seed, symbol_seed=seed,
            count_dispersion=count_dispersion,
        )
        # One kernel build shared by every machine in this pipeline.
        self.symbols = build_symbol_table(seed)
        self.callgraph = CallGraph(self.symbols, seed)
        self.vocabulary = Vocabulary.from_symbol_table(self.symbols)

    # -- machines --------------------------------------------------------------

    def make_machine(self, machine_seed: int, tracer=None) -> SimulatedMachine:
        """A machine of this pipeline's kernel build, optionally traced."""
        config = MachineConfig(
            n_cpus=self.machine_config.n_cpus,
            cpu_ghz=self.machine_config.cpu_ghz,
            seed=machine_seed,
            symbol_seed=self.seed,
            count_dispersion=self.machine_config.count_dispersion,
        )
        return SimulatedMachine(
            config=config,
            tracer=tracer,
            symbols=self.symbols,
            callgraph=self.callgraph,
        )

    # -- collection ---------------------------------------------------------------

    def collect_documents(
        self, workload, n_intervals: int, run_seed: int = 0, on_document=None
    ) -> list:
        """Run one workload under a fresh Fmeter-traced machine.

        ``on_document`` is forwarded to the daemon's streaming hook: a
        monitoring service passes a callback here to receive each count
        document the moment it is harvested.
        """
        # Imported here: repro.tracing.daemon itself imports repro.core
        # (for CountDocument), so a module-level import would be circular.
        from repro.tracing.daemon import LoggingDaemon
        from repro.tracing.fmeter import FmeterTracer

        if n_intervals <= 0:
            raise ValueError("n_intervals must be positive")
        machine_seed = (self.seed * 1_000_003 + run_seed) & ((1 << 62) - 1)
        machine = self.make_machine(machine_seed, tracer=FmeterTracer())
        module = getattr(workload, "module", None)
        if module is not None:
            machine.load_module(module)
        daemon = LoggingDaemon(
            machine,
            interval_s=self.interval_s,
            self_interference=self.self_interference,
            on_document=on_document,
        )
        return daemon.collect(
            workload.interval_runner(machine, self.interval_s),
            n_intervals,
            label=workload.label,
            metadata={"workload": workload.name},
        )

    def collect(self, workloads, intervals_per_workload: int) -> CollectionResult:
        """Collect signatures for all workloads and fit tf-idf on the pool."""
        corpus = Corpus(self.vocabulary)
        for run_seed, workload in enumerate(workloads):
            corpus.extend(
                self.collect_documents(
                    workload, intervals_per_workload, run_seed=run_seed
                )
            )
        model = TfIdfModel(
            use_idf=self.use_idf, normalize_tf=self.normalize_tf
        )
        signatures = model.fit_transform(corpus)
        return CollectionResult(
            vocabulary=self.vocabulary,
            corpus=corpus,
            model=model,
            signatures=signatures,
        )
