"""Similarity search over signatures via a sharded, array-backed inverted index.

"Indexable" is the paper's headline property: signatures can be stored and
later retrieved by similarity against a query signature.  The index keeps a
posting list per term (dimension) mapping signature id to that signature's
weight on the term; a query is scored by walking the postings of its
nonzero dimensions and accumulating dot products — the standard IR trick,
effective here because different workloads light up substantially
different function subsets.

The scoring engine is CSR-backed and **sharded**: compiled postings are
partitioned into ``shards`` signature-id-range blocks (each its own
immutable :class:`_CsrPostings` — ``indptr``/``sig_ids``/``weights``
arrays, term-major — covering one contiguous id range), with freshly
added signatures collecting in a small *tail* of (dim, id, weight) array
triplets — one triplet per ``add``/``add_batch`` call — until the next
amortized recompile routes them into the shards.  A batch of queries is
scored shard by shard: per shard, one flattened ``bincount`` — the
sparse product ``Q · Sᵀ`` restricted to that shard's id range —
accumulates into a dense *tile* of ``n_queries × shard_width`` instead
of a dense row over every id.  The query-chunk cap divides by the
number of tiles kept in flight, so a scoring pass's *total* dense
allocation is bounded by one fixed cap whether tiles run sequentially
or fan out — per-batch accumulator memory no longer grows with the
index — and tiles stay small enough to be cache-resident.  Per-shard top-k
(the same partition-then-stable-sort selection) then k-way-merges by
``(-score, signature_id)`` — provably the order the unsharded global
sort produces (see :meth:`IndexReadView._merge_rows`) — and the
accumulation order within every (query, signature) cell is unchanged
(a signature's postings live in exactly one shard, gathered in
ascending-dimension order), so scores stay **bit-identical** to the
reference term-at-a-time accumulator (kept as
:meth:`IndexReadView.search_reference`, the semantics oracle) for any
shard count.

Shards are independent work items: with more than one shard on a
multi-core machine, :meth:`IndexReadView.search_batch` fans the tiles
out on a small persistent process-wide thread pool (the gather /
``repeat`` / ``bincount`` kernels run in C and release the GIL), and
the deterministic merge makes the result independent of completion
order.  The shard count is auto-sized from ``os.cpu_count()`` (capped)
unless ``SignatureIndex(shards=...)`` pins it.

Reads never block writes: :meth:`SignatureIndex.read_view` captures an
immutable :class:`IndexReadView` — shard blocks are swapped, never
mutated, on recompile, and the small mutable leftovers (alive mask,
signature table) are copied — so a service can take a view under its
lock and run scoring outside it while ingest continues.  The capture
itself is O(1) steady-state: the view is cached per mutation
generation, so only the first query after a mutation pays the O(live)
copy.

Metric guarantees: ``cosine`` scores the candidate set (signatures
sharing at least one term with the query; anything disjoint has cosine
0 and is omitted).  ``euclidean`` is scored **exactly over every live
signature** — disjoint signatures still have a finite distance
``sqrt(|q|² + |s|²)``, which falls out of the same vectorized formula at
no extra asymptotic cost, so euclidean top-k is never short or
approximate (the seed implementation pruned to candidates and could
silently return fewer or farther neighbours).

Removal is O(1): the signature is tombstoned (alive-mask flip) and its
posting entries are skipped during scoring until the next
:meth:`~SignatureIndex.compact` — triggered automatically once
tombstones outnumber live entries, and implied by every tail recompile.
"""

from __future__ import annotations

import heapq
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.signature import Signature
from repro.core.sparse import SparseVector, sequential_norms

__all__ = [
    "IndexReadView",
    "SearchResult",
    "SignatureIndex",
    "auto_shard_count",
    "scoring_pool_stats",
]

#: Cap on the dense (queries × ids) score tile a single batch scoring
#: pass may allocate; larger batches are processed in chunks.  With
#: sharding the tile width is the widest shard, not the whole id space,
#: so the same cap admits proportionally more queries per pass.
_SCORE_BLOCK_ELEMENTS = 1 << 22

#: Ceiling on the auto-sized shard count: past ~one shard per core the
#: extra per-tile fixed costs (indptr gathers, selection) buy nothing.
_MAX_AUTO_SHARDS = 8

#: Tiles narrower than this are cheaper to score inline than to ship to
#: the pool — the captured default executor is only used above it.  An
#: explicitly passed executor always fans out (tests rely on that).
_MIN_PARALLEL_TILE_WIDTH = 1024

#: Sentinel: "use the executor captured when the view was taken".
_UNSET = object()


def auto_shard_count() -> int:
    """The shard count used when none is requested: one per core, capped."""
    return max(1, min(os.cpu_count() or 1, _MAX_AUTO_SHARDS))


_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def _scoring_pool() -> ThreadPoolExecutor:
    """The persistent process-wide scoring pool (created on first use).

    One small fixed pool serves every index in the process: tile tasks
    are pure array work over immutable view captures (no locks, no
    shared mutable state), so any number of concurrent readers share it
    safely, and queries never pay a pool setup/teardown.
    """
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=auto_shard_count(),
                thread_name_prefix="fmeter-score",
            )
        return _pool


def scoring_pool_stats() -> dict:
    """Best-effort utilization of the process-wide scoring pool.

    ``threads`` is how many workers the pool has spun up, ``queued`` how
    many tile tasks are waiting for one.  Zeros before the pool's first
    use.  Reads executor internals defensively (they are stdlib-private)
    so a future Python can degrade this gauge to zeros rather than break
    the sampler sweep.
    """
    with _pool_lock:
        pool = _pool
    if pool is None:
        return {"threads": 0, "queued": 0}
    threads = len(getattr(pool, "_threads", ()) or ())
    queue = getattr(pool, "_work_queue", None)
    queued = queue.qsize() if queue is not None else 0
    return {"threads": threads, "queued": queued}


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s + c)`` for each pair, fully vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    prefix = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=prefix[1:])
    return np.repeat(starts - prefix, counts) + np.arange(total, dtype=np.int64)


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit: the stored signature, its id, and the score.

    ``score`` is cosine similarity (higher is better) or negated Euclidean
    distance (so higher is always better), per the query's metric.
    """

    signature_id: int
    signature: Signature
    score: float


class _CsrPostings:
    """One compiled posting block in CSR layout, term-major.

    ``indptr[d]:indptr[d + 1]`` slices ``sig_ids``/``weights`` to the
    posting list of dimension ``d``, ordered by ascending signature id.
    The block is immutable once built — recompiles swap in whole new
    blocks — so a reader holding a reference keeps a consistent view
    with no copying.  Every id in the block lies in
    ``[id_base, id_bound)``: the block is one signature-id-range shard,
    and its dense score tile spans ``id_bound - id_base`` columns, not
    the whole id space.
    """

    __slots__ = ("indptr", "sig_ids", "weights", "id_bound", "id_base")

    def __init__(
        self,
        indptr: np.ndarray,
        sig_ids: np.ndarray,
        weights: np.ndarray,
        id_bound: int,
        id_base: int = 0,
    ):
        for arr in (indptr, sig_ids, weights):
            arr.setflags(write=False)
        self.indptr = indptr
        self.sig_ids = sig_ids
        self.weights = weights
        self.id_bound = id_bound
        self.id_base = id_base

    @property
    def nnz(self) -> int:
        return len(self.sig_ids)

    @classmethod
    def from_triplets(
        cls,
        n_dims: int,
        dims: np.ndarray,
        sig_ids: np.ndarray,
        weights: np.ndarray,
        id_bound: int,
        id_base: int = 0,
    ) -> "_CsrPostings":
        """Compile (dim, id, weight) triplets into one block.

        Entries land ordered by (dimension, then ascending id) — the
        posting order that keeps array scoring bit-identical to the
        term-at-a-time reference accumulator.  Each (dim, id) pair is
        unique and every id is below ``id_bound``, so the composite key
        ``dim * id_bound + id`` sorts into exactly that order with no
        stability requirement — numpy's unstable introsort on the keys
        is ~2x the speed of a stable sort on ``dims`` alone, and this
        sort is the dominant cost of compiling a bulk-ingested tail.
        """
        if id_bound > 0:
            order = np.argsort(dims * np.int64(id_bound) + sig_ids)
        else:
            order = np.argsort(dims, kind="stable")
        dims = dims[order]
        indptr = np.zeros(n_dims + 1, dtype=np.int64)
        np.cumsum(np.bincount(dims, minlength=n_dims), out=indptr[1:])
        return cls(indptr, sig_ids[order], weights[order], id_bound, id_base)


class IndexReadView:
    """An immutable point-in-time capture of a :class:`SignatureIndex`.

    Taken under the owner's lock (:meth:`SignatureIndex.read_view`) and
    then scored with **no lock held**: concurrent ``add``/``remove``/
    ``compact`` on the owning index are invisible to the view.  The
    shard blocks (compiled posting shards + compiled tail) and the norms
    array are shared, not copied — blocks are swapped, never mutated,
    and norm slots are write-once per id — while the alive mask and
    signature table are copied at capture: O(live) pointer work, no
    weight data moves (and the capture itself is cached per mutation
    generation, so steady-state queries reuse one view object).
    """

    __slots__ = (
        "_vocabulary",
        "_blocks",
        "_tail_csr",
        "_norms",
        "_alive",
        "_signatures",
        "_next_id",
        "_executor",
        "_postings_cache",
        "_dead_cache",
    )

    def __init__(
        self,
        vocabulary,
        blocks,
        tail_csr,
        norms,
        alive,
        signatures,
        next_id,
        executor=None,
    ):
        self._vocabulary = vocabulary
        self._blocks = tuple(blocks)
        self._tail_csr = tail_csr
        self._norms = norms
        self._alive = alive
        self._signatures = signatures
        self._next_id = next_id
        self._executor = executor
        self._postings_cache: dict[int, dict[int, float]] | None = None
        self._dead_cache: frozenset[int] | None = None

    def __len__(self) -> int:
        return len(self._signatures)

    # -- scoring -----------------------------------------------------------------

    def _check_query(self, query: Signature) -> None:
        if self._vocabulary is not None and query.vocabulary != self._vocabulary:
            raise ValueError("query vocabulary does not match the index")

    def _tiles(self) -> list[tuple[int, int, "_CsrPostings | None"]]:
        """The (lo, hi, block) score tiles covering ``[0, next_id)``.

        One tile per non-empty-range compiled shard plus one for the
        uncompiled id range (whose postings, if any, sit in the tail
        block).  A tile's block may be ``None`` or empty — ids in the
        range can still be alive (zero-weight signatures) and euclidean
        must score them from norms alone.
        """
        tiles: list[tuple[int, int, _CsrPostings | None]] = []
        for block in self._blocks:
            if block.id_bound > block.id_base:
                tiles.append((block.id_base, block.id_bound, block))
        bound = self._blocks[-1].id_bound if self._blocks else 0
        if self._next_id > bound:
            tiles.append((bound, self._next_id, self._tail_csr))
        return tiles

    @staticmethod
    def _stack_support(sparses: list[SparseVector]):
        """The batch's support, stacked once per chunk and shared by
        every tile: concatenated query dims/weights plus each entry's
        query-row index."""
        pairs = [sparse.arrays() for sparse in sparses]
        sizes = np.array([dims.size for dims, _ in pairs], dtype=np.int64)
        all_dims = np.concatenate([dims for dims, _ in pairs])
        all_weights = np.concatenate([values for _, values in pairs])
        row_of = np.repeat(np.arange(len(sparses), dtype=np.int64), sizes)
        return all_dims, all_weights, row_of

    def _dot_tile(
        self,
        nq: int,
        all_dims: np.ndarray,
        all_weights: np.ndarray,
        row_of: np.ndarray,
        lo: int,
        hi: int,
        block: "_CsrPostings | None",
        need_candidates: bool,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Dense ``(nq, hi - lo)`` dot-product (and candidate) tile for
        one shard, computed as one flattened ``bincount`` over the
        gathered posting entries of every query — the sparse ``Q · Sᵀ``
        product restricted to the shard's id range.

        Per accumulator bin, entries arrive in ascending-dimension order
        (a signature's postings live entirely in this one block),
        matching the reference accumulator's summation order exactly.

        ``need_candidates=False`` skips the second (candidate-counting)
        bincount and returns ``None`` for it — exact euclidean scores
        every live signature and never reads the mask.
        """
        width = hi - lo
        if block is not None and block.nnz and all_dims.size:
            starts = block.indptr[all_dims]
            counts = block.indptr[all_dims + 1] - starts
            gather = _expand_ranges(starts, counts)
        else:
            gather = np.empty(0, dtype=np.int64)
        if not gather.size:
            empty_mask = (
                np.zeros((nq, width), dtype=bool) if need_candidates else None
            )
            return np.zeros((nq, width)), empty_mask
        # Accumulator offset (query row * width - shard base) per
        # gathered entry, so the whole batch lands in one flat bincount
        # over local (in-shard) columns.
        flat_ids = block.sig_ids[gather] + np.repeat(
            row_of * np.int64(width) - lo, counts
        )
        flat_values = np.repeat(all_weights, counts) * block.weights[gather]
        dots = np.bincount(
            flat_ids, weights=flat_values, minlength=nq * width
        ).reshape(nq, width)
        if not need_candidates:
            return dots, None
        touched = np.bincount(flat_ids, minlength=nq * width).reshape(nq, width)
        return dots, touched > 0

    def _tile_scores(
        self,
        query_norms: np.ndarray,
        dots: np.ndarray,
        lo: int,
        hi: int,
        metric: str,
    ) -> np.ndarray:
        """Scores for every (query, id) cell of one shard's tile.

        Cells outside the selection mask (non-candidates for cosine,
        tombstones for either metric) may hold garbage — selection never
        reads them.  A cosine *candidate* always has a positive norm and
        a positive-norm query (a zero vector emits no postings), so the
        guarded division of the reference scorer reduces to plain
        elementwise ops here.
        """
        norms = self._norms[lo:hi]
        if metric == "cosine":
            # Clamped like SparseVector.cosine: accumulated dots can
            # round a hair past 1.0 for near-identical vectors, and
            # callers treat the score as a true cosine.
            with np.errstate(divide="ignore", invalid="ignore"):
                denominators = query_norms[:, None] * norms[None, :]
                return np.minimum(1.0, dots / denominators)
        # ||q - s|| from norms and accumulated dots; see
        # _euclidean_from_dot for the cancellation guard.
        scale = query_norms[:, None] ** 2 + (norms**2)[None, :]
        d2 = scale - 2.0 * dots
        d2[d2 < 1e-14 * scale] = 0.0
        # sqrt, not **0.5: IEEE sqrt is correctly rounded, so the scalar
        # reference path lands on the same bits.
        return -np.sqrt(d2)

    def _select_row(
        self, ids: np.ndarray, scores: np.ndarray, k: int
    ) -> list[SearchResult]:
        """Top-k results among ``ids`` (ascending, aligned with
        ``scores``), ties broken by ascending id (the stable sort
        preserves the input order)."""
        if ids.size == 0:
            return []
        negated = -scores
        if ids.size > 4 * k:
            # Partition down to ~k before the exact sort.  Partitioning
            # breaks ties arbitrarily, so candidates tied with the k-th
            # value are re-gathered explicitly and filled in ascending
            # id order — identical to sorting everything.
            boundary = np.max(negated[np.argpartition(negated, k - 1)[:k]])
            better = np.flatnonzero(negated < boundary)
            tied = np.flatnonzero(negated == boundary)
            take = np.concatenate([better, tied[: k - better.size]])
            order = take[np.argsort(negated[take], kind="stable")]
        else:
            order = np.argsort(negated, kind="stable")[:k]
        return [
            SearchResult(
                signature_id=int(ids[j]),
                signature=self._signatures[int(ids[j])],
                score=float(scores[j]),
            )
            for j in order
        ]

    def _search_tile(
        self,
        tile: tuple[int, int, "_CsrPostings | None"],
        nq: int,
        all_dims: np.ndarray,
        all_weights: np.ndarray,
        row_of: np.ndarray,
        query_norms: np.ndarray,
        k: int,
        metric: str,
    ) -> list[list[SearchResult]]:
        """One shard's top-k rows for a query chunk (pool work item).

        Pure array work over the view's immutable capture — no locks,
        no shared mutable state — so any number of tiles run
        concurrently on the scoring pool.
        """
        lo, hi, block = tile
        need_candidates = metric == "cosine"
        dots, candidates = self._dot_tile(
            nq, all_dims, all_weights, row_of, lo, hi, block, need_candidates
        )
        scores = self._tile_scores(query_norms, dots, lo, hi, metric)
        alive_slice = self._alive[lo:hi]
        # Exact euclidean scores every live signature in the range,
        # query-independent: disjoint pairs contribute dot 0 but still
        # have a finite distance (see the module docstring).
        alive_local = None if need_candidates else np.flatnonzero(alive_slice)
        out: list[list[SearchResult]] = []
        for qi in range(nq):
            chosen = (
                alive_local
                if alive_local is not None
                else np.flatnonzero(candidates[qi] & alive_slice)
            )
            out.append(self._select_row(chosen + lo, scores[qi][chosen], k))
        return out

    @staticmethod
    def _merge_rows(
        rows: list[list[SearchResult]], k: int
    ) -> list[SearchResult]:
        """k-way merge of per-shard top-k rows for one query.

        Provably equal to the unsharded global selection: the global
        top-k are the k smallest ``(-score, id)`` keys over all live
        candidates; every one of them is among the k smallest of its own
        shard (a shard holds a subset), so the union of per-shard top-k
        lists contains the global top-k, and sorting the union by the
        same key — score descending, ascending id on ties, exactly the
        stable-sort order :meth:`_select_row` produces — yields them in
        the global order.  Keys are unique (ids are), so the merge is
        deterministic regardless of shard completion order.
        """
        nonempty = [row for row in rows if row]
        if not nonempty:
            return []
        if len(nonempty) == 1:
            return nonempty[0][:k]
        merged = sorted(
            (result for row in nonempty for result in row),
            key=lambda r: (-r.score, r.signature_id),
        )
        return merged[:k]

    def _fan_out_width(self, tiles) -> int:
        """How many tiles the default executor would keep in flight at
        once (1 when scoring runs sequentially).  The query-chunk cap is
        divided by this, so the *total* accumulator allocation of a
        scoring pass respects ``_SCORE_BLOCK_ELEMENTS`` whether tiles
        run sequentially or concurrently."""
        max_width = max(hi - lo for lo, hi, _ in tiles)
        if (
            self._executor is not None
            and len(tiles) > 1
            and max_width >= _MIN_PARALLEL_TILE_WIDTH
        ):
            return len(tiles)
        return 1

    def peak_accumulator_bytes(
        self, batch_size: int, metric: str = "cosine", fan_out: int | None = None
    ) -> int:
        """Dense accumulator bytes one scoring pass allocates for a
        batch of ``batch_size`` queries, summed over every matrix and
        every concurrently in-flight tile.

        Cosine allocates two equal dense matrices per tile (dots plus
        the candidate-count bincount); euclidean allocates one.  Under
        pool fan-out all tiles of a chunk are live at once — the chunk
        cap divides by the fan-out width so the total stays bounded
        either way.  ``fan_out`` pins the assumed in-flight tile count
        (``None``: what this view's default executor would do;
        ``1``: the sequential per-tile bound, the hardware-independent
        number that shrinks ~S-fold with the shard count versus an
        unsharded accumulator over the whole id space — benchmarks
        print both so regressions are visible).
        """
        tiles = self._tiles()
        if not tiles or batch_size <= 0:
            return 0
        width = max(hi - lo for lo, hi, _ in tiles)
        concurrency = (
            self._fan_out_width(tiles)
            if fan_out is None
            else max(1, min(fan_out, len(tiles)))
        )
        matrices = 2 if metric == "cosine" else 1
        nq = min(
            batch_size,
            max(1, _SCORE_BLOCK_ELEMENTS // (width * concurrency)),
        )
        return matrices * nq * width * 8 * concurrency

    def search(
        self, query: Signature, k: int = 10, metric: str = "cosine"
    ) -> list[SearchResult]:
        """Top-k most similar stored signatures.

        ``cosine`` ranks the candidate set (signatures sharing at least
        one term; disjoint signatures have cosine 0 and are omitted).
        ``euclidean`` is exact over every live signature — neighbours
        sharing no term with the query are still found at their true
        distance, never silently dropped.
        """
        return self.search_batch([query], k=k, metric=metric)[0]

    def search_batch(
        self,
        queries: list[Signature],
        k: int = 10,
        metric: str = "cosine",
        executor=_UNSET,
    ) -> list[list[SearchResult]]:
        """Top-k results for each query, in query order.

        The batch is scored shard by shard as bounded dense tiles (one
        sparse matrix product per shard, chunked so no tile exceeds the
        accumulator cap) and the per-shard top-k merged per query;
        scores and result order are bit-identical to
        :meth:`search_reference` for any shard count.

        ``executor`` overrides the fan-out: the default uses the pool
        captured at view creation (None on single-core machines or
        single-shard indexes, and skipped for tiles too narrow to be
        worth shipping); pass ``None`` to force sequential scoring or
        any ``Executor`` to force fan-out.  The choice affects wall
        clock only — results are bitwise identical either way.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if metric not in SignatureIndex.METRICS:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {SignatureIndex.METRICS}"
            )
        for query in queries:
            self._check_query(query)
        if not queries:
            return []
        if self._next_id == 0:
            return [[] for _ in queries]
        tiles = self._tiles()
        max_width = max(hi - lo for lo, hi, _ in tiles)
        if executor is _UNSET:
            pool = (
                self._executor
                if len(tiles) > 1 and max_width >= _MIN_PARALLEL_TILE_WIDTH
                else None
            )
        else:
            pool = executor if len(tiles) > 1 else None
        sparses = [query.to_sparse() for query in queries]
        # Fan-out keeps every tile of a chunk in flight at once, so the
        # chunk cap divides by the tile count: the pass's *total* dense
        # allocation respects the cap sequentially and in parallel
        # alike.  Chunking never changes bits — each query row
        # accumulates independently.
        concurrency = len(tiles) if pool is not None else 1
        chunk_size = max(1, _SCORE_BLOCK_ELEMENTS // (max_width * concurrency))
        out: list[list[SearchResult]] = []
        for start in range(0, len(sparses), chunk_size):
            chunk = sparses[start : start + chunk_size]
            nq = len(chunk)
            query_norms = np.array([sparse.norm() for sparse in chunk])
            all_dims, all_weights, row_of = self._stack_support(chunk)
            args = (nq, all_dims, all_weights, row_of, query_norms, k, metric)
            if pool is not None:
                futures = [
                    pool.submit(self._search_tile, tile, *args)
                    for tile in tiles
                ]
                tile_rows = [future.result() for future in futures]
            else:
                tile_rows = [self._search_tile(tile, *args) for tile in tiles]
            for qi in range(nq):
                out.append(self._merge_rows([rows[qi] for rows in tile_rows], k))
        return out

    def label_votes(
        self, query: Signature, k: int = 5, metric: str = "cosine"
    ) -> dict[str, int]:
        """k-NN label histogram for the query — simple diagnosis primitive."""
        votes: dict[str, int] = {}
        for result in self.search(query, k=k, metric=metric):
            label = result.signature.label
            if label is not None:
                votes[label] = votes.get(label, 0) + 1
        return votes

    # -- the reference scorer -----------------------------------------------------

    def _dict_postings(self) -> dict[int, dict[int, float]]:
        """The seed's dict-of-dicts posting lists, materialized lazily.

        Only the reference scorer pays for this; it reconstructs exactly
        what the seed implementation maintained incrementally — per
        dimension, ``{signature id: weight}`` in ascending-id insertion
        order (shard blocks cover ascending id ranges, so walking them
        in order preserves it) — so timing :meth:`search_reference`
        against it is a faithful baseline.
        """
        if self._postings_cache is None:
            postings: dict[int, dict[int, float]] = {}
            for block in (*self._blocks, self._tail_csr):
                if block is None or not block.nnz:
                    continue
                indptr = block.indptr
                for dim in range(len(indptr) - 1):
                    start, end = int(indptr[dim]), int(indptr[dim + 1])
                    if start == end:
                        continue
                    entries = postings.setdefault(dim, {})
                    for position in range(start, end):
                        entries[int(block.sig_ids[position])] = float(
                            block.weights[position]
                        )
            self._postings_cache = postings
        return self._postings_cache

    def _dead_ids(self) -> frozenset[int]:
        """Tombstoned ids, as the set the seed scorer skipped over."""
        if self._dead_cache is None:
            self._dead_cache = frozenset(
                int(i) for i in np.flatnonzero(~self._alive)
            )
        return self._dead_cache

    def _accumulate_reference(self, query_sparse: SparseVector) -> dict[int, float]:
        """Candidate id -> dot product, term-at-a-time in Python.

        The seed implementation, kept as the semantics oracle: for every
        live candidate the array engine's accumulated dot must be
        bit-identical to this one (same addends, same order — dimensions
        ascending, ids ascending within a dimension).
        """
        acc: dict[int, float] = {}
        all_postings = self._dict_postings()
        dead = self._dead_ids()
        for dim, query_weight in query_sparse.sorted_items():
            postings = all_postings.get(dim)
            if not postings:
                continue
            for sig_id, weight in postings.items():
                if sig_id in dead:
                    continue
                acc[sig_id] = acc.get(sig_id, 0.0) + query_weight * weight
        return acc

    def _euclidean_from_dot(
        self, query_norm: float, sig_id: int, dot: float
    ) -> float:
        """||q - s|| from norms and the accumulated dot product.

        ``||q - s||^2 = ||q||^2 + ||s||^2 - 2 q.s`` cancels
        catastrophically for near-identical vectors, leaving residue on
        the order of machine epsilon times the squared norms; anything
        below a few epsilons of that scale is genuinely zero as far as
        this formula can tell, so it is snapped to zero rather than
        surfacing as a spurious ~1e-8 distance.  The guard sits just
        above the formula's own resolution (~2e-16 * scale) so that
        every distance the subtraction can actually resolve survives.
        """
        norm = float(self._norms[sig_id])
        scale = query_norm**2 + norm**2
        d2 = scale - 2.0 * dot
        if d2 < 1e-14 * scale:
            return 0.0
        return float(np.sqrt(d2))

    def search_reference(
        self, query: Signature, k: int = 10, metric: str = "cosine"
    ) -> list[SearchResult]:
        """The seed scorer: dict accumulation + heap top-k, per query.

        Benchmarks use it as the per-query-loop baseline the sharded
        batch engine is measured against, and tests pin the engines
        bit-identical.  Note the seed euclidean semantics are preserved
        here (candidates only — approximate), unlike :meth:`search`.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if metric not in SignatureIndex.METRICS:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {SignatureIndex.METRICS}"
            )
        self._check_query(query)
        query_sparse = query.to_sparse()
        query_norm = query_sparse.norm()
        acc = self._accumulate_reference(query_sparse)
        if metric == "cosine":
            scored = (
                (
                    min(1.0, dot / (query_norm * float(self._norms[sig_id])))
                    if query_norm and self._norms[sig_id]
                    else 0.0,
                    sig_id,
                )
                for sig_id, dot in acc.items()
            )
        else:
            scored = (
                (-self._euclidean_from_dot(query_norm, sig_id, dot), sig_id)
                for sig_id, dot in acc.items()
            )
        top = heapq.nsmallest(k, scored, key=lambda pair: (-pair[0], pair[1]))
        return [
            SearchResult(
                signature_id=sig_id,
                signature=self._signatures[sig_id],
                score=score,
            )
            for score, sig_id in top
        ]


class SignatureIndex:
    """An inverted index of signatures with top-k retrieval and removal."""

    METRICS = ("cosine", "euclidean")

    #: Auto-compaction floor: below this many tombstones, never compact.
    MIN_TOMBSTONES_FOR_COMPACTION = 16

    #: Recompile the tail into the shard blocks once it holds at least
    #: this many posting entries *and* at least a quarter of the
    #: compiled blocks' — geometric growth keeps the amortized recompile
    #: cost per added entry constant.
    MIN_TAIL_NNZ_FOR_COMPILE = 4096

    def __init__(self, shards: int | None = None):
        if shards is None:
            shards = auto_shard_count()
        elif shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        #: Number of signature-id-range shards the compiled postings are
        #: partitioned into at every recompile (fixed unless
        #: :meth:`reshard` is called).  More shards than ids is fine —
        #: the surplus shards are empty ranges and cost nothing.
        self.shards = int(shards)
        self._signatures: dict[int, Signature] = {}
        #: Insertion (== ascending id) order; compilation depends on it.
        self._sparse: dict[int, SparseVector] = {}
        #: Write-once slot per id; shared with read views.
        self._norms = np.zeros(0)
        self._alive = np.zeros(0, dtype=bool)
        #: The compiled posting shards, ascending id ranges covering
        #: ``[0, compiled bound)``; swapped wholesale on recompile.
        self._blocks: tuple[_CsrPostings, ...] = ()
        #: Posting entries not yet compiled, as (dims, ids, weights)
        #: array triplets appended in ascending-id order — one triplet
        #: per add/add_batch call, no per-entry Python churn.  Ids here
        #: are always >= the compiled blocks' bound.
        self._tail_chunks: list[
            tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = []
        self._tail_nnz = 0
        #: The tail compiled into its own CSR block for scoring views,
        #: rebuilt lazily after adds (O(tail), amortized across reads).
        self._tail_csr_cache: _CsrPostings | None = None
        self._tombstones: set[int] = set()
        self._next_id = 0
        self._vocabulary = None
        #: Mutation generation + the view cached for it: read_view() is
        #: O(1) until the next add/remove/compact/reshard invalidates.
        self._generation = 0
        self._view_cache: IndexReadView | None = None

    def __len__(self) -> int:
        return len(self._signatures)

    @property
    def tombstones(self) -> int:
        """Removed ids whose posting entries await compaction."""
        return len(self._tombstones)

    @property
    def compiled_postings(self) -> int:
        """Posting entries in the compiled shard blocks (may include
        tombstoned entries until the next compaction)."""
        return sum(block.nnz for block in self._blocks)

    @property
    def tail_postings(self) -> int:
        """Posting entries awaiting compilation into the shard blocks."""
        return self._tail_nnz

    @property
    def generation(self) -> int:
        """Mutation counter; read views are cached per generation."""
        return self._generation

    @property
    def _compiled_bound(self) -> int:
        """Ids below this live in the compiled shards; at or past it, in
        the tail."""
        return self._blocks[-1].id_bound if self._blocks else 0

    def _invalidate_views(self) -> None:
        self._generation += 1
        self._view_cache = None

    def _ensure_capacity(self, n: int) -> None:
        if n <= len(self._norms):
            return
        capacity = max(n, 2 * len(self._norms), 64)
        norms = np.zeros(capacity)
        norms[: len(self._norms)] = self._norms
        alive = np.zeros(capacity, dtype=bool)
        alive[: len(self._alive)] = self._alive
        self._norms = norms
        self._alive = alive

    def _append_postings(self, sig_id: int, signature: Signature) -> None:
        """Record one signature's table entries; postings go to the tail
        in a single array triplet (no per-entry work)."""
        sparse = signature.to_sparse()
        self._signatures[sig_id] = signature
        self._sparse[sig_id] = sparse
        self._norms[sig_id] = sparse.norm()
        self._alive[sig_id] = True
        dims, values = sparse.arrays()
        if dims.size:
            self._tail_chunks.append(
                (dims, np.full(dims.size, sig_id, dtype=np.int64), values)
            )
            self._tail_nnz += dims.size
            self._tail_csr_cache = None

    def _maybe_compile(self) -> None:
        """The amortized recompile decision (one per add/add_batch)."""
        if self._tail_nnz >= self.MIN_TAIL_NNZ_FOR_COMPILE and (
            not self._blocks or self._tail_nnz * 4 >= self.compiled_postings
        ):
            self.compact()

    def _check_vocabulary(self, signature: Signature) -> None:
        if self._vocabulary is None:
            self._vocabulary = signature.vocabulary
        elif signature.vocabulary != self._vocabulary:
            raise ValueError(
                "signature vocabulary does not match the index vocabulary"
            )

    def add(self, signature: Signature) -> int:
        """Index a signature; returns its id."""
        self._check_vocabulary(signature)
        sig_id = self._next_id
        self._next_id += 1
        self._ensure_capacity(self._next_id)
        self._append_postings(sig_id, signature)
        self._invalidate_views()
        self._maybe_compile()
        return sig_id

    def add_all(self, signatures: list[Signature]) -> list[int]:
        return [self.add(sig) for sig in signatures]

    def add_batch(self, signatures: list[Signature]) -> list[int]:
        """Index a whole batch; returns the ids, in batch order.

        Bulk counterpart of :meth:`add` with identical results (same
        ids, postings, norms, and scores): every signature is validated
        up front (nothing is indexed if any of the batch is foreign),
        the capacity grows once, each signature's posting arrays land in
        the tail as one concatenated triplet, and the amortized
        recompile decision runs once per batch instead of once per
        signature.
        """
        if not signatures:
            return []
        # Validate against a local vocabulary and adopt it only once
        # the whole batch passes: a rejected batch must leave the index
        # untouched, including its vocabulary binding.
        vocabulary = self._vocabulary
        for signature in signatures:
            if vocabulary is None:
                vocabulary = signature.vocabulary
            elif signature.vocabulary != vocabulary:
                raise ValueError(
                    "signature vocabulary does not match the index vocabulary"
                )
        self._vocabulary = vocabulary
        n = len(signatures)
        self._ensure_capacity(self._next_id + n)
        first_id = self._next_id
        ids: list[int] = []
        dim_parts: list[np.ndarray] = []
        weight_parts: list[np.ndarray] = []
        lengths = np.empty(n, dtype=np.int64)
        sparses: list[SparseVector] = []
        for j, signature in enumerate(signatures):
            sig_id = self._next_id
            self._next_id += 1
            ids.append(sig_id)
            sparse = signature.to_sparse()
            sparses.append(sparse)
            self._signatures[sig_id] = signature
            self._sparse[sig_id] = sparse
            self._alive[sig_id] = True
            dims, values = sparse.arrays()
            lengths[j] = dims.size
            dim_parts.append(dims)
            weight_parts.append(values)
        weights = np.concatenate(weight_parts)
        # One vectorized pass for every norm, in SparseVector.norm()'s
        # own summation order; the vectors' norm caches are seeded with
        # the same bits so later norm() calls agree.
        norms = sequential_norms(weights, lengths)
        self._norms[first_id : self._next_id] = norms
        for sparse, norm in zip(sparses, norms.tolist()):
            if sparse._norm_cache is None:
                sparse._norm_cache = norm
        if weights.size:
            self._tail_chunks.append(
                (
                    np.concatenate(dim_parts),
                    np.repeat(np.arange(first_id, self._next_id), lengths),
                    weights,
                )
            )
            self._tail_nnz += weights.size
            self._tail_csr_cache = None
        self._invalidate_views()
        self._maybe_compile()
        return ids

    def get(self, sig_id: int) -> Signature:
        try:
            return self._signatures[sig_id]
        except KeyError:
            raise KeyError(f"no signature with id {sig_id}") from None

    def remove(self, sig_id: int) -> Signature:
        """Tombstone a signature in O(1); postings are cleaned lazily."""
        signature = self.get(sig_id)
        del self._signatures[sig_id]
        del self._sparse[sig_id]
        self._alive[sig_id] = False
        self._tombstones.add(sig_id)
        self._invalidate_views()
        if (
            len(self._tombstones) >= self.MIN_TOMBSTONES_FOR_COMPACTION
            and len(self._tombstones) > len(self._signatures)
        ):
            self.compact()
        return signature

    def _partition_blocks(
        self,
        n_dims: int,
        dims: np.ndarray,
        sig_ids: np.ndarray,
        weights: np.ndarray,
    ) -> tuple[_CsrPostings, ...]:
        """Partition live triplets into ``shards`` id-range blocks
        covering ``[0, next_id)``.

        Ranges are equal-width in id space (deterministic, independent
        of content); a shard with no ids or no postings compiles to an
        empty block and scores as a skipped or norms-only tile.  The
        entries are bucketed with one stable argsort on the shard
        assignment, then each contiguous segment gets the usual
        composite-key compile.
        """
        bound = self._next_id
        shard_count = self.shards
        bounds = (np.arange(shard_count + 1, dtype=np.int64) * bound) // shard_count
        shard_of = np.searchsorted(bounds[1:], sig_ids, side="right")
        order = np.argsort(shard_of, kind="stable")
        dims, sig_ids, weights = dims[order], sig_ids[order], weights[order]
        offsets = np.zeros(shard_count + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(shard_of, minlength=shard_count), out=offsets[1:]
        )
        return tuple(
            _CsrPostings.from_triplets(
                n_dims,
                dims[offsets[i] : offsets[i + 1]],
                sig_ids[offsets[i] : offsets[i + 1]],
                weights[offsets[i] : offsets[i + 1]],
                id_bound=int(bounds[i + 1]),
                id_base=int(bounds[i]),
            )
            for i in range(shard_count)
        )

    def compact(self) -> int:
        """Recompile the shard blocks: merge the tail, drop tombstoned
        entries, repartition the id space.

        Ids of live signatures are preserved (external references stay
        valid), and in-flight read views keep scoring the blocks they
        captured — the old arrays are replaced, never mutated.  The
        rebuild is pure array work: the old blocks expand back to
        triplets (already dim-major, ids ascending), the tail chunks
        append after them (ids all past the compiled bound), dead
        entries drop by one alive-mask gather, and each shard's
        composite-key sort restores the (dim asc, id asc) posting order
        scoring depends on — no per-signature Python loop.  Returns the
        number of tombstones reclaimed.
        """
        reclaimed = len(self._tombstones)
        n_dims = len(self._vocabulary) if self._vocabulary is not None else 0
        dim_parts: list[np.ndarray] = []
        id_parts: list[np.ndarray] = []
        weight_parts: list[np.ndarray] = []
        for block in self._blocks:
            if not block.nnz:
                continue
            dim_parts.append(
                np.repeat(
                    np.arange(n_dims, dtype=np.int64),
                    np.diff(block.indptr),
                )
            )
            id_parts.append(block.sig_ids)
            weight_parts.append(block.weights)
        for dims, sig_ids, weights in self._tail_chunks:
            dim_parts.append(dims)
            id_parts.append(sig_ids)
            weight_parts.append(weights)
        if dim_parts:
            dims = np.concatenate(dim_parts)
            sig_ids = np.concatenate(id_parts)
            weights = np.concatenate(weight_parts)
            if self._tombstones:
                keep = self._alive[sig_ids]
                dims, sig_ids, weights = (
                    dims[keep], sig_ids[keep], weights[keep]
                )
        else:
            dims = np.empty(0, dtype=np.int64)
            sig_ids = np.empty(0, dtype=np.int64)
            weights = np.empty(0)
        self._blocks = self._partition_blocks(n_dims, dims, sig_ids, weights)
        self._tail_chunks = []
        self._tail_nnz = 0
        self._tail_csr_cache = None
        self._tombstones = set()
        self._invalidate_views()
        return reclaimed

    def reshard(self, shards: int | None) -> int:
        """Change the shard count and repartition now; returns the new
        count.  ``None`` re-resolves the automatic (per-core) count.
        A no-op when the count is unchanged."""
        resolved = auto_shard_count() if shards is None else int(shards)
        if resolved < 1:
            raise ValueError(f"shards must be positive, got {resolved}")
        if resolved != self.shards:
            self.shards = resolved
            self.compact()
        return self.shards

    def _tail_block(self) -> _CsrPostings | None:
        """The tail compiled into an immutable CSR block (cached).

        Each live id appears in exactly one chunk with unique
        dimensions, so the concatenated triplets satisfy
        ``from_triplets``'s uniqueness requirement and compile to the
        (dim asc, id asc) posting order scoring bit-identity depends
        on.
        """
        if not self._tail_nnz or self._vocabulary is None:
            return None
        if self._tail_csr_cache is None:
            self._tail_csr_cache = _CsrPostings.from_triplets(
                len(self._vocabulary),
                np.concatenate([dims for dims, _, _ in self._tail_chunks]),
                np.concatenate([ids for _, ids, _ in self._tail_chunks]),
                np.concatenate([w for _, _, w in self._tail_chunks]),
                id_bound=self._next_id,
                id_base=self._compiled_bound,
            )
        return self._tail_csr_cache

    def _scoring_executor(self) -> ThreadPoolExecutor | None:
        """The executor read views capture for tile fan-out: the shared
        scoring pool when both shards and cores are plural, else None
        (sequential scoring — a pool of one would only add overhead)."""
        if self.shards > 1 and (os.cpu_count() or 1) > 1:
            return _scoring_pool()
        return None

    def read_view(self) -> IndexReadView:
        """An immutable scoring view of the current index state.

        Take it under whatever lock guards mutation, then search with no
        lock held — see :class:`IndexReadView`.  O(1) steady-state: the
        capture is cached per mutation generation, so only the first
        call after an add/remove/compact pays the O(live) alive-mask and
        signature-table copy — repeat queries against an unchanged index
        reuse the same immutable view object.
        """
        if self._view_cache is None:
            self._view_cache = IndexReadView(
                vocabulary=self._vocabulary,
                blocks=self._blocks,
                tail_csr=self._tail_block(),
                norms=self._norms,
                alive=self._alive[: self._next_id].copy(),
                signatures=dict(self._signatures),
                next_id=self._next_id,
                executor=self._scoring_executor(),
            )
        return self._view_cache

    def _borrow_view(self) -> IndexReadView:
        """A zero-copy view for same-thread use (no isolation)."""
        return IndexReadView(
            vocabulary=self._vocabulary,
            blocks=self._blocks,
            tail_csr=self._tail_block(),
            norms=self._norms,
            alive=self._alive[: self._next_id],
            signatures=self._signatures,
            next_id=self._next_id,
            executor=self._scoring_executor(),
        )

    def _raw_posting_ids(self, dim: int) -> set[int]:
        """Ids with a posting on ``dim``, tombstones included."""
        ids: set[int] = set()
        for block in (*self._blocks, self._tail_block()):
            if block is None or not block.nnz or dim + 1 >= len(block.indptr):
                continue
            segment = block.sig_ids[block.indptr[dim] : block.indptr[dim + 1]]
            ids.update(int(i) for i in segment)
        return ids

    def posting_list(self, dim: int) -> set[int]:
        """Ids of signatures with a nonzero weight on dimension ``dim``."""
        return {i for i in self._raw_posting_ids(dim) if self._alive[i]}

    def candidates(self, query: Signature) -> set[int]:
        """Ids sharing at least one nonzero term with the query."""
        ids: set[int] = set()
        for dim in query.to_sparse().dimensions():
            ids |= self._raw_posting_ids(dim)
        # One alive pass over the union, not one per dimension.
        return {i for i in ids if self._alive[i]}

    def search(
        self, query: Signature, k: int = 10, metric: str = "cosine"
    ) -> list[SearchResult]:
        """Top-k most similar stored signatures.

        See :meth:`IndexReadView.search` for the per-metric guarantees
        (cosine: candidate set; euclidean: exact over all live
        signatures).
        """
        return self._borrow_view().search(query, k=k, metric=metric)

    def search_batch(
        self,
        queries: list[Signature],
        k: int = 10,
        metric: str = "cosine",
        executor=_UNSET,
    ) -> list[list[SearchResult]]:
        """Top-k results for each query, scored as per-shard tile
        products with a deterministic merge (optionally fanned out on
        the scoring pool — see :meth:`IndexReadView.search_batch`)."""
        return self._borrow_view().search_batch(
            queries, k=k, metric=metric, executor=executor
        )

    def label_votes(
        self, query: Signature, k: int = 5, metric: str = "cosine"
    ) -> dict[str, int]:
        """k-NN label histogram for the query — simple diagnosis primitive."""
        return self._borrow_view().label_votes(query, k=k, metric=metric)
