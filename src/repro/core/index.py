"""Similarity search over signatures via an array-backed inverted index.

"Indexable" is the paper's headline property: signatures can be stored and
later retrieved by similarity against a query signature.  The index keeps a
posting list per term (dimension) mapping signature id to that signature's
weight on the term; a query is scored by walking the postings of its
nonzero dimensions and accumulating dot products — the standard IR trick,
effective here because different workloads light up substantially
different function subsets.

The scoring engine is CSR-backed: postings live in one contiguous
compiled block (:class:`_CsrPostings` — ``indptr``/``sig_ids``/``weights``
arrays, term-major), with freshly added signatures collecting in a small
*tail* of (dim, id, weight) array triplets — one triplet per
``add``/``add_batch`` call — until the next amortized recompile.  A
batch of queries is
scored as one flattened ``bincount`` — effectively the sparse product
``Q · Sᵀ`` — instead of a Python loop per query per posting entry, and
the accumulation order is arranged so the array scores are bit-identical
to the reference term-at-a-time accumulator (kept as
:meth:`IndexReadView.search_reference`, the semantics oracle).

Reads never block writes: :meth:`SignatureIndex.read_view` captures an
immutable :class:`IndexReadView` — CSR blocks are swapped, never
mutated, on recompile, and the small mutable leftovers (alive mask,
signature table) are copied — so a service can take a view under its
lock and run scoring outside it while ingest continues.

Metric guarantees: ``cosine`` scores the candidate set (signatures
sharing at least one term with the query; anything disjoint has cosine
0 and is omitted).  ``euclidean`` is scored **exactly over every live
signature** — disjoint signatures still have a finite distance
``sqrt(|q|² + |s|²)``, which falls out of the same vectorized formula at
no extra asymptotic cost, so euclidean top-k is never short or
approximate (the seed implementation pruned to candidates and could
silently return fewer or farther neighbours).

Removal is O(1): the signature is tombstoned (alive-mask flip) and its
posting entries are skipped during scoring until the next
:meth:`~SignatureIndex.compact` — triggered automatically once
tombstones outnumber live entries, and implied by every tail recompile.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.signature import Signature
from repro.core.sparse import SparseVector, sequential_norms

__all__ = ["IndexReadView", "SearchResult", "SignatureIndex"]

#: Cap on the dense (queries × ids) score block a single batch scoring
#: pass may allocate; larger batches are processed in chunks.
_SCORE_BLOCK_ELEMENTS = 1 << 22


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s + c)`` for each pair, fully vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    prefix = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=prefix[1:])
    return np.repeat(starts - prefix, counts) + np.arange(total, dtype=np.int64)


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit: the stored signature, its id, and the score.

    ``score`` is cosine similarity (higher is better) or negated Euclidean
    distance (so higher is always better), per the query's metric.
    """

    signature_id: int
    signature: Signature
    score: float


class _CsrPostings:
    """One compiled posting block in CSR layout, term-major.

    ``indptr[d]:indptr[d + 1]`` slices ``sig_ids``/``weights`` to the
    posting list of dimension ``d``, ordered by ascending signature id.
    The block is immutable once built — recompiles swap in a whole new
    block — so a reader holding a reference keeps a consistent view with
    no copying.  Every id in the block is ``< id_bound``; ids at or past
    the bound live in the owning index's tail.
    """

    __slots__ = ("indptr", "sig_ids", "weights", "id_bound")

    def __init__(
        self,
        indptr: np.ndarray,
        sig_ids: np.ndarray,
        weights: np.ndarray,
        id_bound: int,
    ):
        for arr in (indptr, sig_ids, weights):
            arr.setflags(write=False)
        self.indptr = indptr
        self.sig_ids = sig_ids
        self.weights = weights
        self.id_bound = id_bound

    @property
    def nnz(self) -> int:
        return len(self.sig_ids)

    @classmethod
    def from_triplets(
        cls,
        n_dims: int,
        dims: np.ndarray,
        sig_ids: np.ndarray,
        weights: np.ndarray,
        id_bound: int,
    ) -> "_CsrPostings":
        """Compile (dim, id, weight) triplets into one block.

        Entries land ordered by (dimension, then ascending id) — the
        posting order that keeps array scoring bit-identical to the
        term-at-a-time reference accumulator.  Each (dim, id) pair is
        unique and every id is below ``id_bound``, so the composite key
        ``dim * id_bound + id`` sorts into exactly that order with no
        stability requirement — numpy's unstable introsort on the keys
        is ~2x the speed of a stable sort on ``dims`` alone, and this
        sort is the dominant cost of compiling a bulk-ingested tail.
        """
        if id_bound > 0:
            order = np.argsort(dims * np.int64(id_bound) + sig_ids)
        else:
            order = np.argsort(dims, kind="stable")
        dims = dims[order]
        indptr = np.zeros(n_dims + 1, dtype=np.int64)
        np.cumsum(np.bincount(dims, minlength=n_dims), out=indptr[1:])
        return cls(indptr, sig_ids[order], weights[order], id_bound)

    @classmethod
    def build(
        cls, n_dims: int, sparse_by_id: dict[int, SparseVector], id_bound: int
    ) -> "_CsrPostings":
        """Compile ``{sig_id: sparse}`` (iterated in ascending-id order)
        into one block."""
        if not sparse_by_id:
            return cls(
                np.zeros(n_dims + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=float),
                id_bound,
            )
        dim_parts, id_parts, weight_parts = [], [], []
        for sig_id, sparse in sparse_by_id.items():
            dims, values = sparse.arrays()
            dim_parts.append(dims)
            id_parts.append(np.full(len(dims), sig_id, dtype=np.int64))
            weight_parts.append(values)
        return cls.from_triplets(
            n_dims,
            np.concatenate(dim_parts),
            np.concatenate(id_parts),
            np.concatenate(weight_parts),
            id_bound,
        )


class IndexReadView:
    """An immutable point-in-time capture of a :class:`SignatureIndex`.

    Taken under the owner's lock (:meth:`SignatureIndex.read_view`) and
    then scored with **no lock held**: concurrent ``add``/``remove``/
    ``compact`` on the owning index are invisible to the view.  The two
    CSR blocks (compiled postings + compiled tail) and the norms array
    are shared, not copied — blocks are swapped, never mutated, and norm
    slots are write-once per id — while the alive mask and signature
    table are copied at capture: O(live) pointer work, no weight data
    moves.
    """

    __slots__ = (
        "_vocabulary",
        "_csr",
        "_tail_csr",
        "_norms",
        "_alive",
        "_signatures",
        "_next_id",
        "_postings_cache",
        "_dead_cache",
    )

    def __init__(
        self, vocabulary, csr, tail_csr, norms, alive, signatures, next_id
    ):
        self._vocabulary = vocabulary
        self._csr = csr
        self._tail_csr = tail_csr
        self._norms = norms
        self._alive = alive
        self._signatures = signatures
        self._next_id = next_id
        self._postings_cache: dict[int, dict[int, float]] | None = None
        self._dead_cache: frozenset[int] | None = None

    def __len__(self) -> int:
        return len(self._signatures)

    # -- scoring -----------------------------------------------------------------

    def _check_query(self, query: Signature) -> None:
        if self._vocabulary is not None and query.vocabulary != self._vocabulary:
            raise ValueError("query vocabulary does not match the index")

    def _dot_block(
        self, sparses: list[SparseVector], need_candidates: bool = True
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Dense ``(len(sparses), next_id)`` dot-product and candidate
        matrices, computed as one flattened ``bincount`` over the gathered
        posting entries of every query (the sparse ``Q · Sᵀ`` product).

        Per accumulator bin, entries arrive in ascending-dimension order
        (compiled entries and tail entries address disjoint id ranges),
        matching the reference accumulator's summation order exactly.

        ``need_candidates=False`` skips the second (candidate-counting)
        bincount and returns ``None`` for it — exact euclidean scores
        every live signature and never reads the mask.
        """
        n = self._next_id
        nq = len(sparses)
        pairs = [sparse.arrays() for sparse in sparses]
        all_dims = np.concatenate([dims for dims, _ in pairs])
        if not all_dims.size:
            return np.zeros((nq, n)), np.zeros((nq, n), dtype=bool)
        all_query_weights = np.concatenate([values for _, values in pairs])
        # Accumulator row offset (query index * n) per support entry, so
        # the whole batch lands in one flat bincount.
        row_offsets = np.repeat(
            np.arange(nq, dtype=np.int64) * n,
            np.array([dims.size for dims, _ in pairs], dtype=np.int64),
        )
        id_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        for block in (self._csr, self._tail_csr):
            if block is None or not block.nnz:
                continue
            starts = block.indptr[all_dims]
            counts = block.indptr[all_dims + 1] - starts
            gather = _expand_ranges(starts, counts)
            if gather.size:
                id_parts.append(
                    block.sig_ids[gather] + np.repeat(row_offsets, counts)
                )
                value_parts.append(
                    np.repeat(all_query_weights, counts) * block.weights[gather]
                )
        if not id_parts:
            empty_mask = (
                np.zeros((nq, n), dtype=bool) if need_candidates else None
            )
            return np.zeros((nq, n)), empty_mask
        flat_ids = np.concatenate(id_parts)
        flat_values = np.concatenate(value_parts)
        dots = np.bincount(
            flat_ids, weights=flat_values, minlength=nq * n
        ).reshape(nq, n)
        if not need_candidates:
            return dots, None
        touched = np.bincount(flat_ids, minlength=nq * n).reshape(nq, n)
        return dots, touched > 0

    def _score_matrix(
        self,
        query_norms: np.ndarray,
        dots: np.ndarray,
        metric: str,
    ) -> np.ndarray:
        """Scores for every (query, id) cell of the accumulator block.

        Cells outside the selection mask (non-candidates for cosine,
        tombstones for either metric) may hold garbage — selection never
        reads them.  A cosine *candidate* always has a positive norm and
        a positive-norm query (a zero vector emits no postings), so the
        guarded division of the reference scorer reduces to plain
        elementwise ops here.
        """
        norms = self._norms[: self._next_id]
        if metric == "cosine":
            # Clamped like SparseVector.cosine: accumulated dots can
            # round a hair past 1.0 for near-identical vectors, and
            # callers treat the score as a true cosine.
            with np.errstate(divide="ignore", invalid="ignore"):
                denominators = query_norms[:, None] * norms[None, :]
                return np.minimum(1.0, dots / denominators)
        # ||q - s|| from norms and accumulated dots; see
        # _euclidean_from_dot for the cancellation guard.
        scale = query_norms[:, None] ** 2 + (norms**2)[None, :]
        d2 = scale - 2.0 * dots
        d2[d2 < 1e-14 * scale] = 0.0
        # sqrt, not **0.5: IEEE sqrt is correctly rounded, so the scalar
        # reference path lands on the same bits.
        return -np.sqrt(d2)

    def _select_row(
        self, chosen: np.ndarray, scores_row: np.ndarray, k: int
    ) -> list[SearchResult]:
        """Top-k results among ``chosen`` ids, ties broken by ascending
        id (``chosen`` is ascending, and the stable sort preserves it)."""
        if chosen.size == 0:
            return []
        scores = scores_row[chosen]
        negated = -scores
        if chosen.size > 4 * k:
            # Partition down to ~k before the exact sort.  Partitioning
            # breaks ties arbitrarily, so candidates tied with the k-th
            # value are re-gathered explicitly and filled in ascending
            # id order — identical to sorting everything.
            boundary = np.max(negated[np.argpartition(negated, k - 1)[:k]])
            better = np.flatnonzero(negated < boundary)
            tied = np.flatnonzero(negated == boundary)
            take = np.concatenate([better, tied[: k - better.size]])
            order = take[np.argsort(negated[take], kind="stable")]
        else:
            order = np.argsort(negated, kind="stable")[:k]
        return [
            SearchResult(
                signature_id=int(chosen[j]),
                signature=self._signatures[int(chosen[j])],
                score=float(scores[j]),
            )
            for j in order
        ]

    def search(
        self, query: Signature, k: int = 10, metric: str = "cosine"
    ) -> list[SearchResult]:
        """Top-k most similar stored signatures.

        ``cosine`` ranks the candidate set (signatures sharing at least
        one term; disjoint signatures have cosine 0 and are omitted).
        ``euclidean`` is exact over every live signature — neighbours
        sharing no term with the query are still found at their true
        distance, never silently dropped.
        """
        return self.search_batch([query], k=k, metric=metric)[0]

    def search_batch(
        self, queries: list[Signature], k: int = 10, metric: str = "cosine"
    ) -> list[list[SearchResult]]:
        """Top-k results for each query, in query order.

        The whole batch is scored as one sparse matrix–matrix product
        (chunked to bound the dense accumulator), so per-query Python
        overhead is amortized away; scores are bit-identical to
        :meth:`search_reference`.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if metric not in SignatureIndex.METRICS:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {SignatureIndex.METRICS}"
            )
        for query in queries:
            self._check_query(query)
        if not queries:
            return []
        if self._next_id == 0:
            return [[] for _ in queries]
        sparses = [query.to_sparse() for query in queries]
        block = max(1, _SCORE_BLOCK_ELEMENTS // self._next_id)
        out: list[list[SearchResult]] = []
        alive = self._alive
        # Exact euclidean scores every live signature, query-independent:
        # disjoint pairs contribute dot 0 but still have a finite
        # distance, so nothing is pruned (see the module docstring).
        alive_idx = np.flatnonzero(alive) if metric == "euclidean" else None
        for start in range(0, len(sparses), block):
            chunk = sparses[start : start + block]
            dots, candidates = self._dot_block(
                chunk, need_candidates=alive_idx is None
            )
            query_norms = np.array([sparse.norm() for sparse in chunk])
            scores = self._score_matrix(query_norms, dots, metric)
            for qi in range(len(chunk)):
                chosen = (
                    alive_idx
                    if alive_idx is not None
                    else np.flatnonzero(candidates[qi] & alive)
                )
                out.append(self._select_row(chosen, scores[qi], k))
        return out

    def label_votes(
        self, query: Signature, k: int = 5, metric: str = "cosine"
    ) -> dict[str, int]:
        """k-NN label histogram for the query — simple diagnosis primitive."""
        votes: dict[str, int] = {}
        for result in self.search(query, k=k, metric=metric):
            label = result.signature.label
            if label is not None:
                votes[label] = votes.get(label, 0) + 1
        return votes

    # -- the reference scorer -----------------------------------------------------

    def _dict_postings(self) -> dict[int, dict[int, float]]:
        """The seed's dict-of-dicts posting lists, materialized lazily.

        Only the reference scorer pays for this; it reconstructs exactly
        what the seed implementation maintained incrementally — per
        dimension, ``{signature id: weight}`` in ascending-id insertion
        order — so timing :meth:`search_reference` against it is a
        faithful baseline.
        """
        if self._postings_cache is None:
            postings: dict[int, dict[int, float]] = {}
            for block in (self._csr, self._tail_csr):
                if block is None or not block.nnz:
                    continue
                indptr = block.indptr
                for dim in range(len(indptr) - 1):
                    start, end = int(indptr[dim]), int(indptr[dim + 1])
                    if start == end:
                        continue
                    entries = postings.setdefault(dim, {})
                    for position in range(start, end):
                        entries[int(block.sig_ids[position])] = float(
                            block.weights[position]
                        )
            self._postings_cache = postings
        return self._postings_cache

    def _dead_ids(self) -> frozenset[int]:
        """Tombstoned ids, as the set the seed scorer skipped over."""
        if self._dead_cache is None:
            self._dead_cache = frozenset(
                int(i) for i in np.flatnonzero(~self._alive)
            )
        return self._dead_cache

    def _accumulate_reference(self, query_sparse: SparseVector) -> dict[int, float]:
        """Candidate id -> dot product, term-at-a-time in Python.

        The seed implementation, kept as the semantics oracle: for every
        live candidate the array engine's accumulated dot must be
        bit-identical to this one (same addends, same order — dimensions
        ascending, ids ascending within a dimension).
        """
        acc: dict[int, float] = {}
        all_postings = self._dict_postings()
        dead = self._dead_ids()
        for dim, query_weight in query_sparse.sorted_items():
            postings = all_postings.get(dim)
            if not postings:
                continue
            for sig_id, weight in postings.items():
                if sig_id in dead:
                    continue
                acc[sig_id] = acc.get(sig_id, 0.0) + query_weight * weight
        return acc

    def _euclidean_from_dot(
        self, query_norm: float, sig_id: int, dot: float
    ) -> float:
        """||q - s|| from norms and the accumulated dot product.

        ``||q - s||^2 = ||q||^2 + ||s||^2 - 2 q.s`` cancels
        catastrophically for near-identical vectors, leaving residue on
        the order of machine epsilon times the squared norms; anything
        below a few epsilons of that scale is genuinely zero as far as
        this formula can tell, so it is snapped to zero rather than
        surfacing as a spurious ~1e-8 distance.  The guard sits just
        above the formula's own resolution (~2e-16 * scale) so that
        every distance the subtraction can actually resolve survives.
        """
        norm = float(self._norms[sig_id])
        scale = query_norm**2 + norm**2
        d2 = scale - 2.0 * dot
        if d2 < 1e-14 * scale:
            return 0.0
        return float(np.sqrt(d2))

    def search_reference(
        self, query: Signature, k: int = 10, metric: str = "cosine"
    ) -> list[SearchResult]:
        """The seed scorer: dict accumulation + heap top-k, per query.

        Benchmarks use it as the per-query-loop baseline the CSR batch
        engine is measured against, and tests pin the engines
        bit-identical.  Note the seed euclidean semantics are preserved
        here (candidates only — approximate), unlike :meth:`search`.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if metric not in SignatureIndex.METRICS:
            raise ValueError(
                f"unknown metric {metric!r}; choose from {SignatureIndex.METRICS}"
            )
        self._check_query(query)
        query_sparse = query.to_sparse()
        query_norm = query_sparse.norm()
        acc = self._accumulate_reference(query_sparse)
        if metric == "cosine":
            scored = (
                (
                    min(1.0, dot / (query_norm * float(self._norms[sig_id])))
                    if query_norm and self._norms[sig_id]
                    else 0.0,
                    sig_id,
                )
                for sig_id, dot in acc.items()
            )
        else:
            scored = (
                (-self._euclidean_from_dot(query_norm, sig_id, dot), sig_id)
                for sig_id, dot in acc.items()
            )
        top = heapq.nsmallest(k, scored, key=lambda pair: (-pair[0], pair[1]))
        return [
            SearchResult(
                signature_id=sig_id,
                signature=self._signatures[sig_id],
                score=score,
            )
            for score, sig_id in top
        ]


class SignatureIndex:
    """An inverted index of signatures with top-k retrieval and removal."""

    METRICS = ("cosine", "euclidean")

    #: Auto-compaction floor: below this many tombstones, never compact.
    MIN_TOMBSTONES_FOR_COMPACTION = 16

    #: Recompile the tail into the CSR block once it holds at least this
    #: many posting entries *and* at least a quarter of the compiled
    #: block's — geometric growth keeps the amortized recompile cost per
    #: added entry constant.
    MIN_TAIL_NNZ_FOR_COMPILE = 4096

    def __init__(self):
        self._signatures: dict[int, Signature] = {}
        #: Insertion (== ascending id) order; compilation depends on it.
        self._sparse: dict[int, SparseVector] = {}
        #: Write-once slot per id; shared with read views.
        self._norms = np.zeros(0)
        self._alive = np.zeros(0, dtype=bool)
        self._csr: _CsrPostings | None = None
        #: Posting entries not yet compiled, as (dims, ids, weights)
        #: array triplets appended in ascending-id order — one triplet
        #: per add/add_batch call, no per-entry Python churn.  Ids here
        #: are always >= the compiled block's id_bound.
        self._tail_chunks: list[
            tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = []
        self._tail_nnz = 0
        #: The tail compiled into its own CSR block for scoring views,
        #: rebuilt lazily after adds (O(tail), amortized across reads).
        self._tail_csr_cache: _CsrPostings | None = None
        self._tombstones: set[int] = set()
        self._next_id = 0
        self._vocabulary = None

    def __len__(self) -> int:
        return len(self._signatures)

    @property
    def tombstones(self) -> int:
        """Removed ids whose posting entries await compaction."""
        return len(self._tombstones)

    @property
    def compiled_postings(self) -> int:
        """Posting entries in the compiled CSR block (may include
        tombstoned entries until the next compaction)."""
        return self._csr.nnz if self._csr is not None else 0

    @property
    def tail_postings(self) -> int:
        """Posting entries awaiting compilation into the CSR block."""
        return self._tail_nnz

    def _ensure_capacity(self, n: int) -> None:
        if n <= len(self._norms):
            return
        capacity = max(n, 2 * len(self._norms), 64)
        norms = np.zeros(capacity)
        norms[: len(self._norms)] = self._norms
        alive = np.zeros(capacity, dtype=bool)
        alive[: len(self._alive)] = self._alive
        self._norms = norms
        self._alive = alive

    def _append_postings(self, sig_id: int, signature: Signature) -> None:
        """Record one signature's table entries; postings go to the tail
        in a single array triplet (no per-entry work)."""
        sparse = signature.to_sparse()
        self._signatures[sig_id] = signature
        self._sparse[sig_id] = sparse
        self._norms[sig_id] = sparse.norm()
        self._alive[sig_id] = True
        dims, values = sparse.arrays()
        if dims.size:
            self._tail_chunks.append(
                (dims, np.full(dims.size, sig_id, dtype=np.int64), values)
            )
            self._tail_nnz += dims.size
            self._tail_csr_cache = None

    def _maybe_compile(self) -> None:
        """The amortized recompile decision (one per add/add_batch)."""
        if self._tail_nnz >= self.MIN_TAIL_NNZ_FOR_COMPILE and (
            self._csr is None or self._tail_nnz * 4 >= self._csr.nnz
        ):
            self.compact()

    def _check_vocabulary(self, signature: Signature) -> None:
        if self._vocabulary is None:
            self._vocabulary = signature.vocabulary
        elif signature.vocabulary != self._vocabulary:
            raise ValueError(
                "signature vocabulary does not match the index vocabulary"
            )

    def add(self, signature: Signature) -> int:
        """Index a signature; returns its id."""
        self._check_vocabulary(signature)
        sig_id = self._next_id
        self._next_id += 1
        self._ensure_capacity(self._next_id)
        self._append_postings(sig_id, signature)
        self._maybe_compile()
        return sig_id

    def add_all(self, signatures: list[Signature]) -> list[int]:
        return [self.add(sig) for sig in signatures]

    def add_batch(self, signatures: list[Signature]) -> list[int]:
        """Index a whole batch; returns the ids, in batch order.

        Bulk counterpart of :meth:`add` with identical results (same
        ids, postings, norms, and scores): every signature is validated
        up front (nothing is indexed if any of the batch is foreign),
        the capacity grows once, each signature's posting arrays land in
        the tail as one concatenated triplet, and the amortized
        recompile decision runs once per batch instead of once per
        signature.
        """
        if not signatures:
            return []
        # Validate against a local vocabulary and adopt it only once
        # the whole batch passes: a rejected batch must leave the index
        # untouched, including its vocabulary binding.
        vocabulary = self._vocabulary
        for signature in signatures:
            if vocabulary is None:
                vocabulary = signature.vocabulary
            elif signature.vocabulary != vocabulary:
                raise ValueError(
                    "signature vocabulary does not match the index vocabulary"
                )
        self._vocabulary = vocabulary
        n = len(signatures)
        self._ensure_capacity(self._next_id + n)
        first_id = self._next_id
        ids: list[int] = []
        dim_parts: list[np.ndarray] = []
        weight_parts: list[np.ndarray] = []
        lengths = np.empty(n, dtype=np.int64)
        sparses: list[SparseVector] = []
        for j, signature in enumerate(signatures):
            sig_id = self._next_id
            self._next_id += 1
            ids.append(sig_id)
            sparse = signature.to_sparse()
            sparses.append(sparse)
            self._signatures[sig_id] = signature
            self._sparse[sig_id] = sparse
            self._alive[sig_id] = True
            dims, values = sparse.arrays()
            lengths[j] = dims.size
            dim_parts.append(dims)
            weight_parts.append(values)
        weights = np.concatenate(weight_parts)
        # One vectorized pass for every norm, in SparseVector.norm()'s
        # own summation order; the vectors' norm caches are seeded with
        # the same bits so later norm() calls agree.
        norms = sequential_norms(weights, lengths)
        self._norms[first_id : self._next_id] = norms
        for sparse, norm in zip(sparses, norms.tolist()):
            if sparse._norm_cache is None:
                sparse._norm_cache = norm
        if weights.size:
            self._tail_chunks.append(
                (
                    np.concatenate(dim_parts),
                    np.repeat(np.arange(first_id, self._next_id), lengths),
                    weights,
                )
            )
            self._tail_nnz += weights.size
            self._tail_csr_cache = None
        self._maybe_compile()
        return ids

    def get(self, sig_id: int) -> Signature:
        try:
            return self._signatures[sig_id]
        except KeyError:
            raise KeyError(f"no signature with id {sig_id}") from None

    def remove(self, sig_id: int) -> Signature:
        """Tombstone a signature in O(1); postings are cleaned lazily."""
        signature = self.get(sig_id)
        del self._signatures[sig_id]
        del self._sparse[sig_id]
        self._alive[sig_id] = False
        self._tombstones.add(sig_id)
        if (
            len(self._tombstones) >= self.MIN_TOMBSTONES_FOR_COMPACTION
            and len(self._tombstones) > len(self._signatures)
        ):
            self.compact()
        return signature

    def compact(self) -> int:
        """Recompile the CSR block: merge the tail, drop tombstoned
        entries.

        Ids of live signatures are preserved (external references stay
        valid), and in-flight read views keep scoring the block they
        captured — the old arrays are replaced, never mutated.  The
        rebuild is pure array work: the old block expands back to
        triplets (already dim-major, ids ascending), the tail chunks
        append after it (ids all past the block's bound), dead entries
        drop by one alive-mask gather, and ``from_triplets``'s
        composite-key sort restores the (dim asc, id asc) posting
        order scoring depends on — no per-signature Python loop.
        Returns the number of tombstones reclaimed.
        """
        reclaimed = len(self._tombstones)
        n_dims = len(self._vocabulary) if self._vocabulary is not None else 0
        dim_parts: list[np.ndarray] = []
        id_parts: list[np.ndarray] = []
        weight_parts: list[np.ndarray] = []
        if self._csr is not None and self._csr.nnz:
            dim_parts.append(
                np.repeat(
                    np.arange(n_dims, dtype=np.int64),
                    np.diff(self._csr.indptr),
                )
            )
            id_parts.append(self._csr.sig_ids)
            weight_parts.append(self._csr.weights)
        for dims, sig_ids, weights in self._tail_chunks:
            dim_parts.append(dims)
            id_parts.append(sig_ids)
            weight_parts.append(weights)
        if dim_parts:
            dims = np.concatenate(dim_parts)
            sig_ids = np.concatenate(id_parts)
            weights = np.concatenate(weight_parts)
            if self._tombstones:
                keep = self._alive[sig_ids]
                dims, sig_ids, weights = (
                    dims[keep], sig_ids[keep], weights[keep]
                )
            self._csr = _CsrPostings.from_triplets(
                n_dims, dims, sig_ids, weights, self._next_id
            )
        else:
            self._csr = _CsrPostings.build(n_dims, {}, self._next_id)
        self._tail_chunks = []
        self._tail_nnz = 0
        self._tail_csr_cache = None
        self._tombstones = set()
        return reclaimed

    def _tail_block(self) -> _CsrPostings | None:
        """The tail compiled into an immutable CSR block (cached).

        Each live id appears in exactly one chunk with unique
        dimensions, so the concatenated triplets satisfy
        ``from_triplets``'s uniqueness requirement and compile to the
        (dim asc, id asc) posting order scoring bit-identity depends
        on.
        """
        if not self._tail_nnz or self._vocabulary is None:
            return None
        if self._tail_csr_cache is None:
            self._tail_csr_cache = _CsrPostings.from_triplets(
                len(self._vocabulary),
                np.concatenate([dims for dims, _, _ in self._tail_chunks]),
                np.concatenate([ids for _, ids, _ in self._tail_chunks]),
                np.concatenate([w for _, _, w in self._tail_chunks]),
                self._next_id,
            )
        return self._tail_csr_cache

    def read_view(self) -> IndexReadView:
        """An immutable scoring view of the current index state.

        Take it under whatever lock guards mutation, then search with no
        lock held — see :class:`IndexReadView`.
        """
        return IndexReadView(
            vocabulary=self._vocabulary,
            csr=self._csr,
            tail_csr=self._tail_block(),
            norms=self._norms,
            alive=self._alive[: self._next_id].copy(),
            signatures=dict(self._signatures),
            next_id=self._next_id,
        )

    def _borrow_view(self) -> IndexReadView:
        """A zero-copy view for same-thread use (no isolation)."""
        return IndexReadView(
            vocabulary=self._vocabulary,
            csr=self._csr,
            tail_csr=self._tail_block(),
            norms=self._norms,
            alive=self._alive[: self._next_id],
            signatures=self._signatures,
            next_id=self._next_id,
        )

    def _raw_posting_ids(self, dim: int) -> set[int]:
        """Ids with a posting on ``dim``, tombstones included."""
        ids: set[int] = set()
        for block in (self._csr, self._tail_block()):
            if block is None or not block.nnz or dim + 1 >= len(block.indptr):
                continue
            segment = block.sig_ids[block.indptr[dim] : block.indptr[dim + 1]]
            ids.update(int(i) for i in segment)
        return ids

    def posting_list(self, dim: int) -> set[int]:
        """Ids of signatures with a nonzero weight on dimension ``dim``."""
        return {i for i in self._raw_posting_ids(dim) if self._alive[i]}

    def candidates(self, query: Signature) -> set[int]:
        """Ids sharing at least one nonzero term with the query."""
        ids: set[int] = set()
        for dim in query.to_sparse().dimensions():
            ids |= self._raw_posting_ids(dim)
        # One alive pass over the union, not one per dimension.
        return {i for i in ids if self._alive[i]}

    def search(
        self, query: Signature, k: int = 10, metric: str = "cosine"
    ) -> list[SearchResult]:
        """Top-k most similar stored signatures.

        See :meth:`IndexReadView.search` for the per-metric guarantees
        (cosine: candidate set; euclidean: exact over all live
        signatures).
        """
        return self._borrow_view().search(query, k=k, metric=metric)

    def search_batch(
        self, queries: list[Signature], k: int = 10, metric: str = "cosine"
    ) -> list[list[SearchResult]]:
        """Top-k results for each query, scored as one batched product."""
        return self._borrow_view().search_batch(queries, k=k, metric=metric)

    def label_votes(
        self, query: Signature, k: int = 5, metric: str = "cosine"
    ) -> dict[str, int]:
        """k-NN label histogram for the query — simple diagnosis primitive."""
        return self._borrow_view().label_votes(query, k=k, metric=metric)
