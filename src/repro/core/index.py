"""Similarity search over signatures via an inverted index.

"Indexable" is the paper's headline property: signatures can be stored and
later retrieved by similarity against a query signature.  The index keeps a
posting list per term (dimension), so a query only scores signatures that
share at least one nonzero term with it — the standard IR trick, effective
here because different workloads light up substantially different function
subsets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.signature import Signature
from repro.core.sparse import SparseVector

__all__ = ["SearchResult", "SignatureIndex"]


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit: the stored signature, its id, and the score.

    ``score`` is cosine similarity (higher is better) or negated Euclidean
    distance (so higher is always better), per the query's metric.
    """

    signature_id: int
    signature: Signature
    score: float


class SignatureIndex:
    """An append-only inverted index of signatures."""

    METRICS = ("cosine", "euclidean")

    def __init__(self):
        self._signatures: dict[int, Signature] = {}
        self._sparse: dict[int, SparseVector] = {}
        self._postings: dict[int, set[int]] = {}
        self._next_id = 0
        self._vocabulary = None

    def __len__(self) -> int:
        return len(self._signatures)

    def add(self, signature: Signature) -> int:
        """Index a signature; returns its id."""
        if self._vocabulary is None:
            self._vocabulary = signature.vocabulary
        elif signature.vocabulary != self._vocabulary:
            raise ValueError(
                "signature vocabulary does not match the index vocabulary"
            )
        sig_id = self._next_id
        self._next_id += 1
        sparse = signature.to_sparse()
        self._signatures[sig_id] = signature
        self._sparse[sig_id] = sparse
        for dim in sparse.dimensions():
            self._postings.setdefault(dim, set()).add(sig_id)
        return sig_id

    def add_all(self, signatures: list[Signature]) -> list[int]:
        return [self.add(sig) for sig in signatures]

    def get(self, sig_id: int) -> Signature:
        try:
            return self._signatures[sig_id]
        except KeyError:
            raise KeyError(f"no signature with id {sig_id}") from None

    def remove(self, sig_id: int) -> Signature:
        signature = self.get(sig_id)
        sparse = self._sparse.pop(sig_id)
        del self._signatures[sig_id]
        for dim in sparse.dimensions():
            postings = self._postings[dim]
            postings.discard(sig_id)
            if not postings:
                del self._postings[dim]
        return signature

    def posting_list(self, dim: int) -> set[int]:
        """Ids of signatures with a nonzero weight on dimension ``dim``."""
        return set(self._postings.get(dim, ()))

    def candidates(self, query: Signature) -> set[int]:
        """Ids sharing at least one nonzero term with the query."""
        ids: set[int] = set()
        for dim in query.to_sparse().dimensions():
            ids |= self._postings.get(dim, set())
        return ids

    def search(
        self, query: Signature, k: int = 10, metric: str = "cosine"
    ) -> list[SearchResult]:
        """Top-k most similar stored signatures.

        With the ``euclidean`` metric, signatures sharing no term with the
        query still have a finite distance, so the candidate pruning is an
        approximation there; for the paper's normalized signatures the
        nearest neighbours always share terms, making it exact in practice.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if metric not in self.METRICS:
            raise ValueError(f"unknown metric {metric!r}; choose from {self.METRICS}")
        if self._vocabulary is not None and query.vocabulary != self._vocabulary:
            raise ValueError("query vocabulary does not match the index")
        query_sparse = query.to_sparse()
        results: list[SearchResult] = []
        for sig_id in self.candidates(query):
            stored = self._sparse[sig_id]
            if metric == "cosine":
                score = query_sparse.cosine(stored)
            else:
                score = -query_sparse.euclidean(stored)
            results.append(
                SearchResult(
                    signature_id=sig_id,
                    signature=self._signatures[sig_id],
                    score=score,
                )
            )
        results.sort(key=lambda r: (-r.score, r.signature_id))
        return results[:k]

    def label_votes(self, query: Signature, k: int = 5, metric: str = "cosine") -> dict[str, int]:
        """k-NN label histogram for the query — simple diagnosis primitive."""
        votes: dict[str, int] = {}
        for result in self.search(query, k=k, metric=metric):
            label = result.signature.label
            if label is not None:
                votes[label] = votes.get(label, 0) + 1
        return votes
