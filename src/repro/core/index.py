"""Similarity search over signatures via an inverted index.

"Indexable" is the paper's headline property: signatures can be stored and
later retrieved by similarity against a query signature.  The index keeps a
posting list per term (dimension) mapping signature id to that signature's
weight on the term, so a query is scored *term-at-a-time*: walk the
postings of the query's nonzero dimensions, accumulating dot products —
the standard IR trick, effective here because different workloads light up
substantially different function subsets.  Cosine and Euclidean scores
both fall out of the accumulated dot products plus cached norms, and the
top k survivors are selected with a bounded heap rather than a full sort,
so a query costs O(matching postings + C log k) for C candidates.

Removal is O(1): the signature is tombstoned and its posting entries are
left behind, skipped during scoring until :meth:`~SignatureIndex.compact`
rebuilds the posting lists (triggered automatically once tombstones
outnumber live entries).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.signature import Signature
from repro.core.sparse import SparseVector

__all__ = ["SearchResult", "SignatureIndex"]


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit: the stored signature, its id, and the score.

    ``score`` is cosine similarity (higher is better) or negated Euclidean
    distance (so higher is always better), per the query's metric.
    """

    signature_id: int
    signature: Signature
    score: float


class SignatureIndex:
    """An inverted index of signatures with top-k retrieval and removal."""

    METRICS = ("cosine", "euclidean")

    #: Auto-compaction floor: below this many tombstones, never compact.
    MIN_TOMBSTONES_FOR_COMPACTION = 16

    def __init__(self):
        self._signatures: dict[int, Signature] = {}
        self._sparse: dict[int, SparseVector] = {}
        self._norms: dict[int, float] = {}
        #: dim -> {signature id -> weight on dim}; may contain tombstoned
        #: ids until the next compaction.
        self._postings: dict[int, dict[int, float]] = {}
        self._tombstones: set[int] = set()
        self._next_id = 0
        self._vocabulary = None

    def __len__(self) -> int:
        return len(self._signatures)

    @property
    def tombstones(self) -> int:
        """Removed ids whose posting entries await compaction."""
        return len(self._tombstones)

    def add(self, signature: Signature) -> int:
        """Index a signature; returns its id."""
        if self._vocabulary is None:
            self._vocabulary = signature.vocabulary
        elif signature.vocabulary != self._vocabulary:
            raise ValueError(
                "signature vocabulary does not match the index vocabulary"
            )
        sig_id = self._next_id
        self._next_id += 1
        sparse = signature.to_sparse()
        self._signatures[sig_id] = signature
        self._sparse[sig_id] = sparse
        self._norms[sig_id] = sparse.norm()
        for dim, weight in sparse.items():
            self._postings.setdefault(dim, {})[sig_id] = weight
        return sig_id

    def add_all(self, signatures: list[Signature]) -> list[int]:
        return [self.add(sig) for sig in signatures]

    def get(self, sig_id: int) -> Signature:
        try:
            return self._signatures[sig_id]
        except KeyError:
            raise KeyError(f"no signature with id {sig_id}") from None

    def remove(self, sig_id: int) -> Signature:
        """Tombstone a signature in O(1); postings are cleaned lazily."""
        signature = self.get(sig_id)
        del self._signatures[sig_id]
        del self._sparse[sig_id]
        del self._norms[sig_id]
        self._tombstones.add(sig_id)
        if (
            len(self._tombstones) >= self.MIN_TOMBSTONES_FOR_COMPACTION
            and len(self._tombstones) > len(self._signatures)
        ):
            self.compact()
        return signature

    def compact(self) -> int:
        """Rebuild posting lists without tombstoned entries.

        Ids of live signatures are preserved (external references stay
        valid).  Returns the number of tombstones reclaimed.
        """
        reclaimed = len(self._tombstones)
        if reclaimed:
            postings: dict[int, dict[int, float]] = {}
            for sig_id, sparse in self._sparse.items():
                for dim, weight in sparse.items():
                    postings.setdefault(dim, {})[sig_id] = weight
            self._postings = postings
            self._tombstones.clear()
        return reclaimed

    def posting_list(self, dim: int) -> set[int]:
        """Ids of signatures with a nonzero weight on dimension ``dim``."""
        return set(self._postings.get(dim, ())) - self._tombstones

    def candidates(self, query: Signature) -> set[int]:
        """Ids sharing at least one nonzero term with the query."""
        ids: set[int] = set()
        for dim in query.to_sparse().dimensions():
            ids |= self._postings.get(dim, {}).keys()
        return ids - self._tombstones

    def _accumulate(self, query_sparse: SparseVector) -> dict[int, float]:
        """Candidate id -> dot product with the query, term-at-a-time."""
        acc: dict[int, float] = {}
        tombstones = self._tombstones
        for dim, query_weight in query_sparse.items():
            postings = self._postings.get(dim)
            if not postings:
                continue
            for sig_id, weight in postings.items():
                if sig_id in tombstones:
                    continue
                acc[sig_id] = acc.get(sig_id, 0.0) + query_weight * weight
        return acc

    def _euclidean_from_dot(
        self, query_norm: float, sig_id: int, dot: float
    ) -> float:
        """||q - s|| from norms and the accumulated dot product.

        ``||q - s||^2 = ||q||^2 + ||s||^2 - 2 q.s`` cancels
        catastrophically for near-identical vectors, leaving residue on
        the order of machine epsilon times the squared norms; anything
        below a few epsilons of that scale is genuinely zero as far as
        this formula can tell, so it is snapped to zero rather than
        surfacing as a spurious ~1e-8 distance.  The guard sits just
        above the formula's own resolution (~2e-16 * scale) so that
        every distance the subtraction can actually resolve survives.
        """
        norm = self._norms[sig_id]
        scale = query_norm**2 + norm**2
        d2 = scale - 2.0 * dot
        if d2 < 1e-14 * scale:
            return 0.0
        return d2**0.5

    def search(
        self, query: Signature, k: int = 10, metric: str = "cosine"
    ) -> list[SearchResult]:
        """Top-k most similar stored signatures.

        With the ``euclidean`` metric, signatures sharing no term with the
        query still have a finite distance, so the candidate pruning is an
        approximation there; for the paper's normalized signatures the
        nearest neighbours always share terms, making it exact in practice.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if metric not in self.METRICS:
            raise ValueError(f"unknown metric {metric!r}; choose from {self.METRICS}")
        if self._vocabulary is not None and query.vocabulary != self._vocabulary:
            raise ValueError("query vocabulary does not match the index")
        query_sparse = query.to_sparse()
        query_norm = query_sparse.norm()
        acc = self._accumulate(query_sparse)
        if metric == "cosine":
            # Clamped like SparseVector.cosine: accumulated dots can
            # round a hair past 1.0 for near-identical vectors, and
            # callers treat the score as a true cosine.
            scored = (
                (
                    min(1.0, dot / (query_norm * self._norms[sig_id]))
                    if query_norm and self._norms[sig_id]
                    else 0.0,
                    sig_id,
                )
                for sig_id, dot in acc.items()
            )
        else:
            scored = (
                (-self._euclidean_from_dot(query_norm, sig_id, dot), sig_id)
                for sig_id, dot in acc.items()
            )
        top = heapq.nsmallest(k, scored, key=lambda pair: (-pair[0], pair[1]))
        return [
            SearchResult(
                signature_id=sig_id,
                signature=self._signatures[sig_id],
                score=score,
            )
            for score, sig_id in top
        ]

    def search_batch(
        self, queries: list[Signature], k: int = 10, metric: str = "cosine"
    ) -> list[list[SearchResult]]:
        """Top-k results for each query, in query order."""
        return [self.search(query, k=k, metric=metric) for query in queries]

    def label_votes(self, query: Signature, k: int = 5, metric: str = "cosine") -> dict[str, int]:
        """k-NN label histogram for the query — simple diagnosis primitive."""
        votes: dict[str, int] = {}
        for result in self.search(query, k=k, metric=metric):
            label = result.signature.label
            if label is not None:
                votes[label] = votes.get(label, 0) + 1
        return votes
