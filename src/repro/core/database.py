"""The labeled signature database and syndrome store (Section 2.2).

The paper envisions operators keeping a database of labeled signatures —
normal behaviours, known bugs, compromised configurations — plus
*syndromes*: cluster centroids that characterize a class of behaviour.
New, unlabeled signatures are diagnosed by nearest-syndrome lookup or
k-NN over the labeled population.

Persistence uses ``numpy``'s ``.npz`` container, two ways:

- :meth:`SignatureDatabase.save` — one archive holding the vocabulary,
  the weight matrix, labels, and syndromes; right for one-shot batch
  collection.
- :meth:`SignatureDatabase.save_shards` — a directory of fixed-size
  shard archives plus a small header.  The database is append-only, so
  a full shard never changes once written: re-snapshotting a database
  that grew only rewrites the header, the final partial shard, and any
  new shards — a long-running ingestion service can snapshot
  continuously without rewriting the world.

Either way the snapshot survives process restarts (the "past diagnostics
leveraged in future problem detection" loop).
"""

from __future__ import annotations

import hashlib
import math
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.index import SignatureIndex
from repro.core.signature import Signature
from repro.core.similarity import euclidean_distance
from repro.core.vocabulary import Vocabulary

__all__ = ["SignatureDatabase", "Syndrome"]


@dataclass(frozen=True)
class Syndrome:
    """A labeled centroid characterizing one class of system behaviour."""

    label: str
    centroid: np.ndarray
    support: int

    def __post_init__(self) -> None:
        if self.support <= 0:
            raise ValueError("syndrome support must be positive")


class SignatureDatabase:
    """Labeled signatures + syndromes, with similarity-based diagnosis.

    ``idf`` optionally stores the tf-idf model's idf vector so that new
    raw count documents can be transformed with the same weighting that
    produced the stored signatures (see :meth:`make_model`).  ``df`` and
    ``corpus_size`` optionally store the fitting sufficient statistics
    themselves, in which case the rehydrated model can also keep
    learning incrementally (``partial_fit``) — what a resumed monitoring
    service needs.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        idf: np.ndarray | None = None,
        df: np.ndarray | None = None,
        corpus_size: int = 0,
        use_idf: bool = True,
        normalize_tf: bool = True,
        shards: int | None = None,
    ):
        self.vocabulary = vocabulary
        #: ``shards`` partitions the scoring engine's compiled postings
        #: into id-range shards (None: auto-sized, one per core).
        self.index = SignatureIndex(shards=shards)
        self._signatures: list[Signature] = []
        self._syndromes: dict[str, Syndrome] = {}
        if idf is not None:
            idf = np.asarray(idf, dtype=float)
            if idf.shape != (len(vocabulary),):
                raise ValueError(
                    f"idf shape {idf.shape} does not match vocabulary size "
                    f"{len(vocabulary)}"
                )
        if df is not None:
            df = np.asarray(df, dtype=np.int64)
            if df.shape != (len(vocabulary),):
                raise ValueError(
                    f"df shape {df.shape} does not match vocabulary size "
                    f"{len(vocabulary)}"
                )
        self.idf = idf
        self.df = df
        self.corpus_size = int(corpus_size)
        #: Weighting switches of the model that produced the stored
        #: signatures; persisted so a rehydrated model transforms new
        #: documents the same way (mixing weighted and unweighted
        #: vectors would silently corrupt every similarity score).
        self.use_idf = use_idf
        self.normalize_tf = normalize_tf
        #: Shard size of the directory this database was last saved to
        #: or loaded from (None until sharded persistence is used);
        #: re-snapshotting with the same size keeps full shards
        #: immutable instead of rewriting the world.
        self.shard_size: int | None = None
        #: Shard filename generation: bumped whenever a snapshot must
        #: rewrite files the previous header references, so the rewrite
        #: lands under fresh names and the header flip stays atomic.
        self.shard_generation: int = 0
        #: Content hashes of this database's *full* shards, computed the
        #: last time each was written, adopted, or loaded.  Rows are
        #: immutable and the database append-only, so a full shard's
        #: hash never goes stale; chained into the header watermark,
        #: they let a steady-state snapshot skip re-verifying old
        #: shards entirely (O(delta) instead of O(database)).
        self._shard_hashes: list[str] = []

    def make_model(self):
        """A :class:`~repro.core.tfidf.TfIdfModel` rehydrated from the
        stored weighting state.

        Prefers the sufficient statistics (``df`` + ``corpus_size``,
        giving a model that supports ``partial_fit``) and falls back to
        the bare ``idf`` vector (transform-only).
        """
        from repro.core.tfidf import TfIdfModel

        if self.df is not None and self.corpus_size > 0:
            return TfIdfModel.from_counts(
                self.vocabulary,
                self.df,
                self.corpus_size,
                use_idf=self.use_idf,
                normalize_tf=self.normalize_tf,
            )
        if self.idf is None:
            raise RuntimeError(
                "database stores no idf vector; pass idf= when building it"
            )
        return TfIdfModel.from_idf(
            self.vocabulary,
            self.idf,
            use_idf=self.use_idf,
            normalize_tf=self.normalize_tf,
        )

    # -- population -------------------------------------------------------------

    def add(self, signature: Signature) -> int:
        if signature.vocabulary != self.vocabulary:
            raise ValueError("signature vocabulary does not match the database")
        if signature.label is None:
            raise ValueError(
                "database signatures must be labeled; diagnose unlabeled "
                "signatures with diagnose()/nearest_syndrome() instead"
            )
        # Index first, like add_batch: an index-side failure must not
        # leave the signature list ahead of the index.
        sig_id = self.index.add(signature)
        self._signatures.append(signature)
        return sig_id

    def add_all(self, signatures: list[Signature]) -> list[int]:
        return [self.add(sig) for sig in signatures]

    def add_batch(self, signatures: list[Signature]) -> list[int]:
        """Store a whole batch; returns the index ids, in batch order.

        Unlike a loop over :meth:`add`, the batch is validated *before*
        anything is stored — a bad signature mid-batch cannot leave the
        database half-extended — and the index ingests the batch's
        posting arrays in one append with a single recompile decision
        (:meth:`~repro.core.index.SignatureIndex.add_batch`).
        """
        for signature in signatures:
            if signature.vocabulary != self.vocabulary:
                raise ValueError(
                    "signature vocabulary does not match the database"
                )
            if signature.label is None:
                raise ValueError(
                    "database signatures must be labeled; diagnose "
                    "unlabeled signatures with diagnose()/"
                    "nearest_syndrome() instead"
                )
        # Index first: if the index-side append raises for any reason,
        # the signature list must not be left ahead of it.
        ids = self.index.add_batch(signatures)
        self._signatures.extend(signatures)
        return ids

    def __len__(self) -> int:
        return len(self._signatures)

    def signatures(self) -> list[Signature]:
        """The stored signatures, in insertion order (copy of the list)."""
        return list(self._signatures)

    def snapshot_view(self) -> "SignatureDatabase":
        """A detached copy for persistence: same signatures, syndromes,
        and weighting state, but an **empty search index**.

        Signatures are immutable and the database is append-only, so the
        copied list is a consistent point-in-time view that can be saved
        (``save``/``save_shards``) without holding the owner's lock while
        the original keeps ingesting.  Do not query the view.
        """
        view = SignatureDatabase(
            self.vocabulary,
            idf=self.idf,
            df=self.df,
            corpus_size=self.corpus_size,
            use_idf=self.use_idf,
            normalize_tf=self.normalize_tf,
            shards=self.index.shards,
        )
        view._signatures = list(self._signatures)
        view._syndromes = dict(self._syndromes)
        view.shard_size = self.shard_size
        view.shard_generation = self.shard_generation
        view._shard_hashes = list(self._shard_hashes)
        return view

    def labels(self) -> list[str]:
        seen: dict[str, None] = {}
        for sig in self._signatures:
            seen.setdefault(sig.label, None)
        return list(seen)

    def with_label(self, label: str) -> list[Signature]:
        return [sig for sig in self._signatures if sig.label == label]

    # -- syndromes -------------------------------------------------------------

    def build_syndrome(self, label: str) -> Syndrome:
        """Compute and store the centroid of all signatures with ``label``."""
        members = self.with_label(label)
        if not members:
            raise KeyError(f"no signatures labeled {label!r}")
        centroid = np.mean([sig.weights for sig in members], axis=0)
        syndrome = Syndrome(label=label, centroid=centroid, support=len(members))
        self._syndromes[label] = syndrome
        return syndrome

    def build_all_syndromes(self) -> list[Syndrome]:
        return [self.build_syndrome(label) for label in self.labels()]

    def syndromes(self) -> list[Syndrome]:
        return list(self._syndromes.values())

    def syndrome(self, label: str) -> Syndrome:
        try:
            return self._syndromes[label]
        except KeyError:
            raise KeyError(f"no syndrome labeled {label!r}") from None

    # -- diagnosis -------------------------------------------------------------

    def nearest_syndrome(self, signature: Signature) -> tuple[Syndrome, float]:
        """The closest syndrome (Euclidean) and its distance."""
        if not self._syndromes:
            raise RuntimeError("no syndromes built yet")
        best: tuple[Syndrome, float] | None = None
        for syndrome in self._syndromes.values():
            d = euclidean_distance(signature.weights, syndrome.centroid)
            if best is None or d < best[1]:
                best = (syndrome, d)
        return best

    def diagnose(
        self, signature: Signature, k: int = 5, metric: str = "cosine"
    ) -> dict[str, float]:
        """k-NN diagnosis: normalized label vote fractions, descending."""
        votes = self.index.label_votes(signature, k=k, metric=metric)
        total = sum(votes.values())
        if total == 0:
            return {}
        fractions = {label: n / total for label, n in votes.items()}
        return dict(sorted(fractions.items(), key=lambda kv: -kv[1]))

    # -- persistence ------------------------------------------------------------

    def _header_arrays(self) -> dict[str, np.ndarray]:
        """Everything except the signatures themselves."""
        arrays: dict[str, np.ndarray] = {
            "terms": np.array(list(self.vocabulary), dtype=np.uint64),
            "names": np.array(self.vocabulary.names(), dtype=object),
            "idf": self.idf if self.idf is not None else np.zeros(0),
            "df": self.df if self.df is not None else np.zeros(0, np.int64),
            "corpus_size": np.array(self.corpus_size, dtype=np.int64),
            "weighting": np.array(
                [self.use_idf, self.normalize_tf], dtype=np.int8
            ),
        }
        syn_labels = list(self._syndromes)
        arrays["syndrome_labels"] = np.array(syn_labels, dtype=object)
        arrays["syndrome_support"] = np.array(
            [self._syndromes[label].support for label in syn_labels], dtype=np.int64
        )
        arrays["syndrome_centroids"] = (
            np.stack([self._syndromes[label].centroid for label in syn_labels])
            if syn_labels
            else np.zeros((0, len(self.vocabulary)))
        )
        return arrays

    def _restore_header(self, data) -> None:
        if "df" in data and data["df"].size:
            self.df = data["df"].astype(np.int64)
        if "corpus_size" in data:
            self.corpus_size = int(data["corpus_size"])
        if "weighting" in data:
            self.use_idf = bool(data["weighting"][0])
            self.normalize_tf = bool(data["weighting"][1])
        for label, centroid, support in zip(
            data["syndrome_labels"],
            data["syndrome_centroids"],
            data["syndrome_support"],
        ):
            self._syndromes[str(label)] = Syndrome(
                label=str(label), centroid=centroid, support=int(support)
            )

    def save(self, path: str | Path) -> None:
        """Write the database (vocabulary, signatures, syndromes) to .npz."""
        path = Path(path)
        arrays = self._header_arrays()
        arrays["weights"] = (
            np.stack([s.weights for s in self._signatures])
            if self._signatures
            else np.zeros((0, len(self.vocabulary)))
        )
        arrays["labels"] = np.array(
            [s.label for s in self._signatures], dtype=object
        )
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(
        cls, path: str | Path, shards: int | None = None
    ) -> "SignatureDatabase":
        path = Path(path)
        with np.load(path, allow_pickle=True) as data:
            vocabulary = Vocabulary(
                [int(t) for t in data["terms"]],
                [str(n) for n in data["names"]],
            )
            idf = data["idf"] if "idf" in data and data["idf"].size else None
            db = cls(vocabulary, idf=idf, shards=shards)
            for weights, label in zip(data["weights"], data["labels"]):
                db.add(
                    Signature(vocabulary, weights, label=str(label))
                )
            db._restore_header(data)
        return db

    # -- sharded persistence ------------------------------------------------------

    HEADER_FILE = "header.npz"

    @staticmethod
    def _shard_path(directory: Path, i: int, generation: int = 0) -> Path:
        if generation == 0:
            return directory / f"shard-{i:05d}.npz"
        return directory / f"shard-g{generation:03d}-{i:05d}.npz"

    @staticmethod
    def _shard_generation(path: Path) -> tuple[int, int] | None:
        """(generation, index) parsed from a shard filename, else None."""
        parts = path.stem.split("-")
        if len(parts) == 2 and parts[1].isdigit():
            return 0, int(parts[1])
        if (
            len(parts) == 3
            and parts[1].startswith("g")
            and parts[1][1:].isdigit()
            and parts[2].isdigit()
        ):
            return int(parts[1][1:]), int(parts[2])
        return None

    def save_shards(
        self, directory: str | Path, shard_size: int = 256, force: bool = False
    ) -> list[Path]:
        """Snapshot into ``directory`` as fixed-size shard archives.

        The database is append-only, so a shard that was written full is
        immutable: snapshots after the database grew skip every existing
        full shard and write only the trailing partial shard, whatever
        new shards the growth requires, and the header.  ``force``
        disables the skip and rewrites every shard — for callers that
        mutated stored weights in place (e.g. a service re-weighting
        its signatures under a newer idf).

        Crash safety: every file lands via write-to-temp + atomic
        rename, shards are written before the header, and a rewrite
        that would touch files the current header references (``force``,
        or a changed ``shard_size``) goes to a *new generation* of
        shard filenames instead — the atomic header write is what flips
        the snapshot over, and old-generation files are only removed
        after it.  A crash at any point leaves the directory loading
        either the old snapshot or the new one, never a mix.  Returns
        the paths (re)written.

        Steady-state cost is **O(delta)**: the header carries a
        content-hash *watermark* — a chain digest over the hashes of
        every full shard it certified on disk — so a re-snapshot first
        checks the directory's header against its own in-memory hash
        chain and skips every watermarked shard without stacking,
        hashing, or reading it.  Only shards past the watermark (new
        fulls and the trailing partial) are verified or written.  A
        directory whose header does not chain-match (foreign database,
        crashed writer, resharded layout) falls back to the full
        per-shard content verification, which re-establishes the
        watermark for next time.
        """
        if shard_size <= 0:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        fingerprint = self.vocabulary.fingerprint()
        written: list[Path] = []

        generation = self.shard_generation
        resharding = self.shard_size is not None and self.shard_size != shard_size
        if force or resharding:
            generation += 1
            # The shard partitioning (or the stored rows themselves)
            # changed: per-shard hashes describe the old layout.
            self._shard_hashes = []

        n_shards = math.ceil(len(self._signatures) / shard_size)
        n_full = len(self._signatures) // shard_size
        watermark = self._verified_watermark(directory, shard_size, generation)
        for i in range(watermark, n_shards):
            path = self._shard_path(directory, i, generation)
            rows = self._signatures[i * shard_size : (i + 1) * shard_size]
            weights = np.stack([s.weights for s in rows])
            labels = np.array([s.label for s in rows], dtype=object)
            if i < len(self._shard_hashes):
                # Rows are immutable and append-only: a full shard's
                # hash computed at an earlier save/load is still exact.
                content = self._shard_hashes[i]
            else:
                content = self._content_hash(weights, labels)
                if len(rows) == shard_size:
                    self._shard_hashes.append(content)
            if (
                generation == self.shard_generation
                and path.exists()
                and len(rows) == shard_size
            ):
                # Adopt the on-disk shard only if its *content* is what
                # we would write: a leftover shard from a crashed run of
                # a different database can match on size and vocabulary
                # but hold different signatures.
                with np.load(path, allow_pickle=True) as shard:
                    if (
                        int(shard["n"]) == shard_size
                        and str(shard["fingerprint"]) == fingerprint
                        and "content_hash" in shard
                        and str(shard["content_hash"]) == content
                    ):
                        continue  # full shard already on disk, immutable
            self._write_atomic(
                path,
                weights=weights,
                labels=labels,
                n=np.array(len(rows), dtype=np.int64),
                fingerprint=np.array(fingerprint),
                content_hash=np.array(content),
            )
            written.append(path)

        self._shard_hashes = self._shard_hashes[:n_full]
        header = self._header_arrays()
        header["n_signatures"] = np.array(len(self._signatures), np.int64)
        header["shard_size"] = np.array(shard_size, dtype=np.int64)
        header["generation"] = np.array(generation, dtype=np.int64)
        header["watermark_shards"] = np.array(n_full, dtype=np.int64)
        header["watermark_digest"] = np.array(
            self._watermark_digest(self._shard_hashes)
        )
        header_path = directory / self.HEADER_FILE
        self._write_atomic(header_path, **header)
        written.append(header_path)
        self.shard_size = shard_size
        self.shard_generation = generation

        for stale in directory.glob("shard-*.npz"):
            parsed = self._shard_generation(stale)
            if parsed is None:
                continue
            gen, index = parsed
            if gen != generation or index >= n_shards:
                stale.unlink()
        return written

    @property
    def verified_shards(self) -> int:
        """Full shards covered by the current content-hash watermark."""
        return len(self._shard_hashes)

    @staticmethod
    def _watermark_digest(hashes: list[str]) -> str:
        """Chain digest over per-shard content hashes (the watermark)."""
        digest = hashlib.blake2b(digest_size=16)
        for h in hashes:
            digest.update(h.encode())
            digest.update(b"\x00")
        return digest.hexdigest()

    def _verified_watermark(
        self, directory: Path, shard_size: int, generation: int
    ) -> int:
        """How many leading full shards the target directory's header
        proves already hold this database's rows.

        Reads only the small header file: its watermark digest must
        chain-match our in-memory per-shard hashes under the same
        generation and shard size.  Anything else — no header, a
        foreign or crashed directory, a resharded layout, a short or
        mismatched chain — yields 0, and :meth:`save_shards` falls back
        to per-shard content verification.
        """
        if generation != self.shard_generation or not self._shard_hashes:
            return 0
        header_path = directory / self.HEADER_FILE
        if not header_path.exists():
            return 0
        try:
            with np.load(header_path, allow_pickle=True) as data:
                if (
                    "watermark_shards" not in data
                    or "watermark_digest" not in data
                    or "shard_size" not in data
                ):
                    return 0
                disk_generation = (
                    int(data["generation"]) if "generation" in data else 0
                )
                disk_shard_size = int(data["shard_size"])
                watermark = int(data["watermark_shards"])
                digest = str(data["watermark_digest"])
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            return 0
        if disk_generation != generation or disk_shard_size != shard_size:
            return 0
        if watermark <= 0 or watermark > len(self._shard_hashes):
            return 0
        if self._watermark_digest(self._shard_hashes[:watermark]) != digest:
            return 0
        # The chain proves what the shards *held* when the header
        # landed; a stat per shard (metadata only, no data read) still
        # catches files deleted out from under the snapshot, so a
        # re-snapshot heals the directory instead of certifying a hole.
        for i in range(watermark):
            if not self._shard_path(directory, i, generation).exists():
                return i
        return watermark

    @staticmethod
    def _content_hash(weights: np.ndarray, labels: np.ndarray) -> str:
        """A digest of one shard's exact content (weights + labels)."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.ascontiguousarray(weights).tobytes())
        for label in labels:
            digest.update(str(label).encode())
            digest.update(b"\x00")
        return digest.hexdigest()

    @staticmethod
    def _write_atomic(path: Path, **arrays: np.ndarray) -> None:
        """savez to a temp file in the same directory, then rename over.

        ``os.replace`` is atomic on POSIX, so readers (and a crashed
        writer's leftovers) only ever see a complete archive at ``path``.
        """
        tmp = path.with_suffix(".tmp.npz")
        try:
            np.savez_compressed(tmp, **arrays)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load_shards(
        cls, directory: str | Path, shards: int | None = None
    ) -> "SignatureDatabase":
        """Rebuild a database from a :meth:`save_shards` directory.

        ``shards`` configures the rebuilt scoring engine's query-shard
        count (unrelated to the on-disk snapshot shards).
        """
        directory = Path(directory)
        header_path = directory / cls.HEADER_FILE
        if not header_path.exists():
            raise FileNotFoundError(
                f"no {cls.HEADER_FILE} in {directory} — not a sharded "
                "signature database"
            )
        with np.load(header_path, allow_pickle=True) as data:
            vocabulary = Vocabulary(
                [int(t) for t in data["terms"]],
                [str(n) for n in data["names"]],
            )
            idf = data["idf"] if data["idf"].size else None
            db = cls(vocabulary, idf=idf, shards=shards)
            n_signatures = int(data["n_signatures"])
            shard_size = int(data["shard_size"])
            generation = (
                int(data["generation"]) if "generation" in data else 0
            )
            watermark = (
                int(data["watermark_shards"])
                if "watermark_shards" in data
                else 0
            )
            watermark_digest = (
                str(data["watermark_digest"])
                if "watermark_digest" in data
                else ""
            )
            db.shard_size = shard_size
            db.shard_generation = generation
            db._restore_header(data)
        fingerprint = vocabulary.fingerprint()
        n_shards = math.ceil(n_signatures / shard_size)
        n_full = n_signatures // shard_size
        shard_hashes: list[str] = []
        for i in range(n_shards):
            path = cls._shard_path(directory, i, generation)
            with np.load(path, allow_pickle=True) as shard:
                if str(shard["fingerprint"]) != fingerprint:
                    raise ValueError(
                        f"shard {path.name} belongs to a different "
                        "vocabulary (kernel build) than the header"
                    )
                shard_weights = shard["weights"]
                shard_labels = shard["labels"]
                if i < n_full:
                    # Full shards are immutable; recomputing the content
                    # hash here (the load is O(database) regardless)
                    # both verifies the header's watermark below and
                    # re-arms O(delta) snapshots after a resume.
                    shard_hashes.append(
                        cls._content_hash(shard_weights, shard_labels)
                    )
                for weights, label in zip(shard_weights, shard_labels):
                    if len(db) == n_signatures:
                        # The database is append-only, so a shard holding
                        # more rows than the header promises is a crash
                        # remnant: a grown trailing shard landed before the
                        # new header did.  The promised prefix is exactly
                        # the old snapshot — load it, ignore the tail.
                        break
                    db.add(Signature(vocabulary, weights, label=str(label)))
        if len(db) != n_signatures:
            raise ValueError(
                f"sharded database is inconsistent: header promises "
                f"{n_signatures} signatures, shards hold {len(db)}"
            )
        if watermark > 0 and (
            watermark > len(shard_hashes)
            or cls._watermark_digest(shard_hashes[:watermark])
            != watermark_digest
        ):
            raise ValueError(
                "snapshot watermark mismatch: the full shards on disk do "
                "not hold the content the header certified (corrupted or "
                "mixed snapshot directory)"
            )
        db._shard_hashes = shard_hashes
        return db
