"""The labeled signature database and syndrome store (Section 2.2).

The paper envisions operators keeping a database of labeled signatures —
normal behaviours, known bugs, compromised configurations — plus
*syndromes*: cluster centroids that characterize a class of behaviour.
New, unlabeled signatures are diagnosed by nearest-syndrome lookup or
k-NN over the labeled population.

Persistence uses ``numpy``'s ``.npz`` container: one archive holds the
vocabulary, the weight matrix, labels, and syndromes, so a database
snapshot survives process restarts (the "past diagnostics leveraged in
future problem detection" loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.index import SignatureIndex
from repro.core.signature import Signature
from repro.core.similarity import euclidean_distance
from repro.core.vocabulary import Vocabulary

__all__ = ["SignatureDatabase", "Syndrome"]


@dataclass(frozen=True)
class Syndrome:
    """A labeled centroid characterizing one class of system behaviour."""

    label: str
    centroid: np.ndarray
    support: int

    def __post_init__(self) -> None:
        if self.support <= 0:
            raise ValueError("syndrome support must be positive")


class SignatureDatabase:
    """Labeled signatures + syndromes, with similarity-based diagnosis.

    ``idf`` optionally stores the tf-idf model's idf vector so that new
    raw count documents can be transformed with the same weighting that
    produced the stored signatures (see :meth:`make_model`).
    """

    def __init__(self, vocabulary: Vocabulary, idf: np.ndarray | None = None):
        self.vocabulary = vocabulary
        self.index = SignatureIndex()
        self._signatures: list[Signature] = []
        self._syndromes: dict[str, Syndrome] = {}
        if idf is not None:
            idf = np.asarray(idf, dtype=float)
            if idf.shape != (len(vocabulary),):
                raise ValueError(
                    f"idf shape {idf.shape} does not match vocabulary size "
                    f"{len(vocabulary)}"
                )
        self.idf = idf

    def make_model(self):
        """A :class:`~repro.core.tfidf.TfIdfModel` rehydrated from ``idf``."""
        from repro.core.tfidf import TfIdfModel

        if self.idf is None:
            raise RuntimeError(
                "database stores no idf vector; pass idf= when building it"
            )
        return TfIdfModel.from_idf(self.vocabulary, self.idf)

    # -- population -------------------------------------------------------------

    def add(self, signature: Signature) -> int:
        if signature.vocabulary != self.vocabulary:
            raise ValueError("signature vocabulary does not match the database")
        if signature.label is None:
            raise ValueError(
                "database signatures must be labeled; diagnose unlabeled "
                "signatures with diagnose()/nearest_syndrome() instead"
            )
        self._signatures.append(signature)
        return self.index.add(signature)

    def add_all(self, signatures: list[Signature]) -> list[int]:
        return [self.add(sig) for sig in signatures]

    def __len__(self) -> int:
        return len(self._signatures)

    def labels(self) -> list[str]:
        seen: dict[str, None] = {}
        for sig in self._signatures:
            seen.setdefault(sig.label, None)
        return list(seen)

    def with_label(self, label: str) -> list[Signature]:
        return [sig for sig in self._signatures if sig.label == label]

    # -- syndromes -------------------------------------------------------------

    def build_syndrome(self, label: str) -> Syndrome:
        """Compute and store the centroid of all signatures with ``label``."""
        members = self.with_label(label)
        if not members:
            raise KeyError(f"no signatures labeled {label!r}")
        centroid = np.mean([sig.weights for sig in members], axis=0)
        syndrome = Syndrome(label=label, centroid=centroid, support=len(members))
        self._syndromes[label] = syndrome
        return syndrome

    def build_all_syndromes(self) -> list[Syndrome]:
        return [self.build_syndrome(label) for label in self.labels()]

    def syndromes(self) -> list[Syndrome]:
        return list(self._syndromes.values())

    def syndrome(self, label: str) -> Syndrome:
        try:
            return self._syndromes[label]
        except KeyError:
            raise KeyError(f"no syndrome labeled {label!r}") from None

    # -- diagnosis -------------------------------------------------------------

    def nearest_syndrome(self, signature: Signature) -> tuple[Syndrome, float]:
        """The closest syndrome (Euclidean) and its distance."""
        if not self._syndromes:
            raise RuntimeError("no syndromes built yet")
        best: tuple[Syndrome, float] | None = None
        for syndrome in self._syndromes.values():
            d = euclidean_distance(signature.weights, syndrome.centroid)
            if best is None or d < best[1]:
                best = (syndrome, d)
        return best

    def diagnose(
        self, signature: Signature, k: int = 5, metric: str = "cosine"
    ) -> dict[str, float]:
        """k-NN diagnosis: normalized label vote fractions, descending."""
        votes = self.index.label_votes(signature, k=k, metric=metric)
        total = sum(votes.values())
        if total == 0:
            return {}
        fractions = {label: n / total for label, n in votes.items()}
        return dict(sorted(fractions.items(), key=lambda kv: -kv[1]))

    # -- persistence ------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the database (vocabulary, signatures, syndromes) to .npz."""
        path = Path(path)
        arrays: dict[str, np.ndarray] = {
            "terms": np.array(list(self.vocabulary), dtype=np.uint64),
            "names": np.array(self.vocabulary.names(), dtype=object),
            "weights": np.stack([s.weights for s in self._signatures])
            if self._signatures
            else np.zeros((0, len(self.vocabulary))),
            "labels": np.array(
                [s.label for s in self._signatures], dtype=object
            ),
        }
        arrays["idf"] = (
            self.idf if self.idf is not None else np.zeros(0)
        )
        syn_labels = list(self._syndromes)
        arrays["syndrome_labels"] = np.array(syn_labels, dtype=object)
        arrays["syndrome_support"] = np.array(
            [self._syndromes[l].support for l in syn_labels], dtype=np.int64
        )
        arrays["syndrome_centroids"] = (
            np.stack([self._syndromes[l].centroid for l in syn_labels])
            if syn_labels
            else np.zeros((0, len(self.vocabulary)))
        )
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "SignatureDatabase":
        path = Path(path)
        with np.load(path, allow_pickle=True) as data:
            vocabulary = Vocabulary(
                [int(t) for t in data["terms"]],
                [str(n) for n in data["names"]],
            )
            idf = data["idf"] if "idf" in data and data["idf"].size else None
            db = cls(vocabulary, idf=idf)
            for weights, label in zip(data["weights"], data["labels"]):
                db.add(
                    Signature(vocabulary, weights, label=str(label))
                )
            for label, centroid, support in zip(
                data["syndrome_labels"],
                data["syndrome_centroids"],
                data["syndrome_support"],
            ):
                db._syndromes[str(label)] = Syndrome(
                    label=str(label), centroid=centroid, support=int(support)
                )
        return db
