"""Signatures: tf-idf weight vectors describing low-level system behaviour.

A :class:`Signature` is the paper's central object — one point in the
vector space spanned by the kernel's functions.  It is immutable, carries
its label and provenance metadata, and offers the comparison operations
the evaluation uses (cosine similarity, Lp distance, L2 unit scaling).
"""

from __future__ import annotations

import numpy as np

from repro.core.similarity import (
    cosine_similarity,
    l2_normalize,
    minkowski_distance,
)
from repro.core.sparse import SparseVector
from repro.core.vocabulary import Vocabulary

__all__ = ["Signature", "stack_signatures"]


class Signature:
    """A tf-idf weight vector over a vocabulary, plus label and metadata."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        weights: np.ndarray,
        label: str | None = None,
        metadata: dict | None = None,
    ):
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(vocabulary),):
            raise ValueError(
                f"weights shape {weights.shape} does not match vocabulary "
                f"size {len(vocabulary)}"
            )
        if not np.isfinite(weights).all():
            raise ValueError("signature weights must be finite")
        if (weights < 0).any():
            raise ValueError("tf-idf weights are non-negative by construction")
        self.vocabulary = vocabulary
        self.weights = weights.copy()
        self.weights.setflags(write=False)
        self.label = label
        self.metadata = dict(metadata or {})
        self._sparse_cache: SparseVector | None = None

    @classmethod
    def _from_valid(
        cls,
        vocabulary: Vocabulary,
        weights: np.ndarray,
        label: str | None,
        metadata: dict | None,
        sparse: SparseVector | None = None,
    ) -> "Signature":
        """Trusted constructor for weights the caller already validated.

        The batch transform produces rows it *proves* finite and
        non-negative (the same arithmetic as the per-document oracle),
        already read-only, with the sparse view in hand — re-validating
        and re-copying every row would put the per-document O(|V|)
        scans back into the vectorized path.  ``weights`` must be
        float64, shape ``(len(vocabulary),)``, and non-writeable.
        """
        sig = cls.__new__(cls)
        sig.vocabulary = vocabulary
        sig.weights = weights
        sig.label = label
        sig.metadata = dict(metadata or {})
        sig._sparse_cache = sparse
        return sig

    # -- inspection ------------------------------------------------------------

    @property
    def dimension(self) -> int:
        return len(self.vocabulary)

    @property
    def nnz(self) -> int:
        return int((self.weights != 0.0).sum())

    @property
    def is_zero(self) -> bool:
        return not self.weights.any()

    def norm(self) -> float:
        return float(np.linalg.norm(self.weights))

    def weight_of(self, address: int) -> float:
        return float(self.weights[self.vocabulary.index_of(address)])

    def top_terms(self, k: int = 10) -> list[tuple[str, float]]:
        """The k highest-weighted kernel functions, for interpretability."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        k = min(k, self.dimension)
        idx = np.argsort(self.weights)[::-1][:k]
        return [
            (self.vocabulary.name_at(int(i)), float(self.weights[int(i)]))
            for i in idx
            if self.weights[int(i)] > 0.0
        ]

    def to_sparse(self) -> SparseVector:
        """The sparse view of the weights (cached; both are immutable)."""
        if self._sparse_cache is None:
            self._sparse_cache = SparseVector.from_dense(self.weights)
        return self._sparse_cache

    # -- comparison ------------------------------------------------------------

    def _check_compatible(self, other: "Signature") -> None:
        if self.vocabulary != other.vocabulary:
            raise ValueError(
                "signatures from different vocabularies are not comparable"
            )

    def cosine(self, other: "Signature") -> float:
        self._check_compatible(other)
        return cosine_similarity(self.weights, other.weights)

    def distance(self, other: "Signature", p: float = 2.0) -> float:
        """Minkowski distance; p=2 is the paper's default Euclidean."""
        self._check_compatible(other)
        return minkowski_distance(self.weights, other.weights, p)

    # -- derivation ------------------------------------------------------------

    def unit(self) -> "Signature":
        """L2 unit-ball scaled copy (the paper's pre-SVM scaling)."""
        return Signature(
            self.vocabulary,
            l2_normalize(self.weights),
            label=self.label,
            metadata=dict(self.metadata),
        )

    def relabeled(self, label: str) -> "Signature":
        return Signature(
            self.vocabulary, self.weights, label=label, metadata=dict(self.metadata)
        )

    def __repr__(self) -> str:
        return (
            f"Signature(label={self.label!r}, dim={self.dimension}, "
            f"nnz={self.nnz}, norm={self.norm():.4f})"
        )


def stack_signatures(signatures: list[Signature]) -> np.ndarray:
    """Stack signatures into an n x N dense matrix (shared vocabulary)."""
    if not signatures:
        raise ValueError("cannot stack an empty signature list")
    vocab = signatures[0].vocabulary
    for sig in signatures[1:]:
        if sig.vocabulary != vocab:
            raise ValueError("signatures span different vocabularies")
    return np.stack([sig.weights for sig in signatures])
