"""Similarity and distance measures on signature vectors (Section 2.1).

The paper compares signatures by cosine similarity or by the Minkowski
distance induced by the Lp norm, defaulting to Euclidean (L2) throughout
its evaluation; these are the reference implementations used by the search
index, clustering, and the SVM's input scaling.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cosine_similarity",
    "euclidean_distance",
    "l2_normalize",
    "lp_norm",
    "minkowski_distance",
    "pairwise_euclidean",
    "cosine_similarity_matrix",
]


def _as_1d(x) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {arr.shape}")
    return arr


def _check_same_shape(x: np.ndarray, y: np.ndarray) -> None:
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")


def lp_norm(x, p: float = 2.0) -> float:
    """The Lp norm; p must be >= 1 for a proper norm."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    arr = _as_1d(x)
    if np.isinf(p):
        return float(np.abs(arr).max(initial=0.0))
    return float(np.power(np.abs(arr), p).sum() ** (1.0 / p))


def cosine_similarity(x, y) -> float:
    """cos(theta) = x.y / (||x|| ||y||); zero vectors yield 0.0.

    1.0 means identical direction, 0.0 means orthogonal ("independent" in
    the paper's Figure 2 sketch).
    """
    a, b = _as_1d(x), _as_1d(y)
    _check_same_shape(a, b)
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.clip(a @ b / (na * nb), -1.0, 1.0))


def minkowski_distance(x, y, p: float = 2.0) -> float:
    """d_p(x, y) = (sum_i |x_i - y_i|^p)^(1/p)."""
    a, b = _as_1d(x), _as_1d(y)
    _check_same_shape(a, b)
    return lp_norm(a - b, p)


def euclidean_distance(x, y) -> float:
    """The paper's default metric: the distance induced by the L2 norm."""
    return minkowski_distance(x, y, 2.0)


def l2_normalize(x) -> np.ndarray:
    """Scale a vector onto the unit ball; the zero vector stays zero.

    Pre-scaling by the max magnitude keeps the squared terms inside the
    representable range: for components near the denormal floor (~1e-161
    and below) a naive ``x / ||x||`` computes the norm from underflowed
    squares and lands visibly off the unit ball.
    """
    arr = _as_1d(x)
    scale = np.abs(arr).max(initial=0.0)
    if scale == 0.0:
        return arr.copy()
    scaled = arr / scale
    return scaled / np.linalg.norm(scaled)


def pairwise_euclidean(matrix) -> np.ndarray:
    """All-pairs Euclidean distances for row vectors (n x n, symmetric)."""
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {m.shape}")
    sq = (m * m).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (m @ m.T)
    np.maximum(d2, 0.0, out=d2)
    d = np.sqrt(d2)
    np.fill_diagonal(d, 0.0)
    return d


def cosine_similarity_matrix(matrix) -> np.ndarray:
    """All-pairs cosine similarities for row vectors; zero rows give 0."""
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {m.shape}")
    norms = np.linalg.norm(m, axis=1)
    safe = np.where(norms == 0.0, 1.0, norms)
    unit = m / safe[:, None]
    sims = np.clip(unit @ unit.T, -1.0, 1.0)
    zero = norms == 0.0
    sims[zero, :] = 0.0
    sims[:, zero] = 0.0
    return sims
