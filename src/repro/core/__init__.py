"""The paper's contribution: indexable low-level system signatures.

Kernel function calls are embedded into the classical vector space model
(Salton et al.):

- a **term** is a kernel function (identified by its start address),
- a **document** (:class:`~repro.core.document.CountDocument`) is the
  per-function call counts observed over one logging interval,
- a **corpus** (:class:`~repro.core.corpus.Corpus`) is a collection of
  documents, supplying document frequencies,
- the **tf-idf model** (:class:`~repro.core.tfidf.TfIdfModel`) turns raw
  counts into weight vectors — the *signatures*
  (:class:`~repro.core.signature.Signature`),
- signatures are compared by cosine similarity or Minkowski distance
  (:mod:`~repro.core.similarity`), searched through an inverted index
  (:mod:`~repro.core.index`), and stored with labels and syndromes in a
  :class:`~repro.core.database.SignatureDatabase`.
"""

from repro.core.corpus import Corpus
from repro.core.database import SignatureDatabase, Syndrome
from repro.core.document import CountDocument, DocumentBatch
from repro.core.index import SearchResult, SignatureIndex
from repro.core.monitor import Alert, StreamingDetector, Verdict
from repro.core.pipeline import CollectionResult, SignaturePipeline
from repro.core.signature import Signature
from repro.core.similarity import (
    cosine_similarity,
    euclidean_distance,
    l2_normalize,
    minkowski_distance,
    pairwise_euclidean,
)
from repro.core.sparse import CsrMatrix, SparseVector
from repro.core.tfidf import TfIdfModel
from repro.core.vocabulary import Vocabulary

__all__ = [
    "Alert",
    "CollectionResult",
    "Corpus",
    "CountDocument",
    "CsrMatrix",
    "DocumentBatch",
    "SearchResult",
    "StreamingDetector",
    "Verdict",
    "Signature",
    "SignatureDatabase",
    "SignatureIndex",
    "SignaturePipeline",
    "SparseVector",
    "Syndrome",
    "TfIdfModel",
    "Vocabulary",
    "cosine_similarity",
    "euclidean_distance",
    "l2_normalize",
    "minkowski_distance",
    "pairwise_euclidean",
]
