"""The tf-idf weighting model (Section 2.1).

Weights follow the paper exactly:

- term frequency  ``tf_{i,j} = n_{i,j} / sum_k n_{k,j}`` — counts
  normalized by document length, so the logging interval does not bias the
  signature;
- inverse document frequency ``idf_i = log(|D| / |{d : t_i in d}|)`` —
  attenuates ubiquitous functions (the locking/slab "prepositions" of the
  kernel) and, the paper argues, the daemon's own measurement
  interference.

Terms never seen in the corpus get weight 0 (their idf is undefined; a
downstream document containing them carries no usable evidence for them).
The two paper-motivated ablation switches — ``use_idf`` and
``normalize_tf`` — exist so the benchmarks can quantify each factor's
contribution.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.corpus import Corpus
from repro.core.document import CountDocument
from repro.core.signature import Signature
from repro.core.vocabulary import Vocabulary

__all__ = ["TfIdfModel"]


class TfIdfModel:
    """Fit idf on a corpus; transform documents into signatures."""

    def __init__(self, use_idf: bool = True, normalize_tf: bool = True):
        self.use_idf = use_idf
        self.normalize_tf = normalize_tf
        self.vocabulary: Vocabulary | None = None
        self._idf: np.ndarray | None = None
        self._corpus_size: int = 0

    # -- fitting ---------------------------------------------------------------

    @classmethod
    def from_idf(
        cls,
        vocabulary: Vocabulary,
        idf: np.ndarray,
        corpus_size: int = 0,
        use_idf: bool = True,
        normalize_tf: bool = True,
    ) -> "TfIdfModel":
        """Rehydrate a fitted model from a stored idf vector.

        The operator workflow needs this: a saved signature database must
        let *new* raw count documents be transformed with the same
        weighting that built the database.
        """
        idf = np.asarray(idf, dtype=float)
        if idf.shape != (len(vocabulary),):
            raise ValueError(
                f"idf shape {idf.shape} does not match vocabulary size "
                f"{len(vocabulary)}"
            )
        if (idf < 0).any():
            raise ValueError("idf values are non-negative by construction")
        model = cls(use_idf=use_idf, normalize_tf=normalize_tf)
        model.vocabulary = vocabulary
        model._idf = idf.copy()
        model._corpus_size = corpus_size
        return model

    def fit(self, corpus: Corpus) -> "TfIdfModel":
        """Compute idf from the corpus document frequencies."""
        if len(corpus) == 0:
            raise ValueError("cannot fit tf-idf on an empty corpus")
        self.vocabulary = corpus.vocabulary
        self._corpus_size = len(corpus)
        df = corpus.document_frequencies().astype(float)
        idf = np.zeros(len(corpus.vocabulary))
        seen = df > 0
        idf[seen] = np.log(self._corpus_size / df[seen])
        self._idf = idf
        return self

    @property
    def fitted(self) -> bool:
        return self._idf is not None

    @property
    def corpus_size(self) -> int:
        return self._corpus_size

    def idf(self) -> np.ndarray:
        if self._idf is None:
            raise RuntimeError("model is not fitted")
        return self._idf.copy()

    def idf_of(self, address: int) -> float:
        if self._idf is None or self.vocabulary is None:
            raise RuntimeError("model is not fitted")
        return float(self._idf[self.vocabulary.index_of(address)])

    # -- transforming ------------------------------------------------------------

    def transform(self, document: CountDocument) -> Signature:
        """Turn one count document into a tf-idf signature."""
        if self._idf is None:
            raise RuntimeError("model is not fitted")
        if document.vocabulary != self.vocabulary:
            raise ValueError("document vocabulary does not match fitted corpus")
        if self.normalize_tf:
            tf = document.term_frequencies()
        else:
            tf = document.counts.astype(float)
        weights = tf * self._idf if self.use_idf else tf
        return Signature(
            vocabulary=document.vocabulary,
            weights=weights,
            label=document.label,
            metadata=dict(document.metadata),
        )

    def transform_corpus(self, corpus: Corpus) -> list[Signature]:
        """Transform every document; vectorized over the corpus matrix."""
        if self._idf is None:
            raise RuntimeError("model is not fitted")
        if corpus.vocabulary != self.vocabulary:
            raise ValueError("corpus vocabulary does not match fitted corpus")
        matrix = corpus.counts_matrix().astype(float)
        if self.normalize_tf and matrix.size:
            totals = matrix.sum(axis=1, keepdims=True)
            np.divide(matrix, totals, out=matrix, where=totals > 0)
        if self.use_idf:
            matrix *= self._idf
        return [
            Signature(
                vocabulary=corpus.vocabulary,
                weights=matrix[i],
                label=doc.label,
                metadata=dict(doc.metadata),
            )
            for i, doc in enumerate(corpus)
        ]

    def fit_transform(self, corpus: Corpus) -> list[Signature]:
        return self.fit(corpus).transform_corpus(corpus)

    def __repr__(self) -> str:
        state = f"fitted on {self._corpus_size} docs" if self.fitted else "unfitted"
        return (
            f"TfIdfModel(use_idf={self.use_idf}, "
            f"normalize_tf={self.normalize_tf}, {state})"
        )
