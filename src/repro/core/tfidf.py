"""The tf-idf weighting model (Section 2.1).

Weights follow the paper exactly:

- term frequency  ``tf_{i,j} = n_{i,j} / sum_k n_{k,j}`` — counts
  normalized by document length, so the logging interval does not bias the
  signature;
- inverse document frequency ``idf_i = log(|D| / |{d : t_i in d}|)`` —
  attenuates ubiquitous functions (the locking/slab "prepositions" of the
  kernel) and, the paper argues, the daemon's own measurement
  interference.

Terms never seen in the corpus get weight 0 (their idf is undefined; a
downstream document containing them carries no usable evidence for them).
The two paper-motivated ablation switches — ``use_idf`` and
``normalize_tf`` — exist so the benchmarks can quantify each factor's
contribution.

The model fits two ways: :meth:`fit` over a complete corpus (the batch
experiments), or :meth:`partial_fit` over document chunks as they stream
in (the monitoring service).  Both maintain the same sufficient
statistics — per-term document frequencies and the corpus size — so a
model partially fitted over any chunking of a corpus is *identical* to
one fitted on the whole corpus at once.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.corpus import Corpus
from repro.core.document import CountDocument, DocumentBatch
from repro.core.signature import Signature
from repro.core.sparse import SparseVector
from repro.core.vocabulary import Vocabulary

__all__ = ["TfIdfModel"]


class TfIdfModel:
    """Fit idf on a corpus; transform documents into signatures."""

    def __init__(self, use_idf: bool = True, normalize_tf: bool = True):
        self.use_idf = use_idf
        self.normalize_tf = normalize_tf
        self.vocabulary: Vocabulary | None = None
        self._idf: np.ndarray | None = None
        self._df: np.ndarray | None = None
        self._corpus_size: int = 0
        #: Count of terms with df > 0, maintained incrementally so the
        #: drift computation never needs a full-vocabulary scan.
        self._n_seen: int = 0

    # -- fitting ---------------------------------------------------------------

    @classmethod
    def from_idf(
        cls,
        vocabulary: Vocabulary,
        idf: np.ndarray,
        corpus_size: int = 0,
        use_idf: bool = True,
        normalize_tf: bool = True,
    ) -> "TfIdfModel":
        """Rehydrate a fitted model from a stored idf vector.

        The operator workflow needs this: a saved signature database must
        let *new* raw count documents be transformed with the same
        weighting that built the database.
        """
        idf = np.asarray(idf, dtype=float)
        if idf.shape != (len(vocabulary),):
            raise ValueError(
                f"idf shape {idf.shape} does not match vocabulary size "
                f"{len(vocabulary)}"
            )
        if (idf < 0).any():
            raise ValueError("idf values are non-negative by construction")
        model = cls(use_idf=use_idf, normalize_tf=normalize_tf)
        model.vocabulary = vocabulary
        model._idf = idf.copy()
        model._corpus_size = corpus_size
        return model

    @classmethod
    def from_counts(
        cls,
        vocabulary: Vocabulary,
        document_frequencies: np.ndarray,
        corpus_size: int,
        use_idf: bool = True,
        normalize_tf: bool = True,
    ) -> "TfIdfModel":
        """Rehydrate from the fitting *sufficient statistics* (df, |D|).

        Unlike :meth:`from_idf`, a model restored this way can keep
        learning: :meth:`partial_fit` resumes exactly where the saved
        model stopped, which is what lets a monitoring service restart
        from a snapshot without replaying its whole ingest history.
        """
        df = np.asarray(document_frequencies, dtype=np.int64)
        if df.shape != (len(vocabulary),):
            raise ValueError(
                f"df shape {df.shape} does not match vocabulary size "
                f"{len(vocabulary)}"
            )
        if corpus_size <= 0:
            raise ValueError("corpus_size must be positive")
        if (df < 0).any() or (df > corpus_size).any():
            raise ValueError("df values must lie in [0, corpus_size]")
        model = cls(use_idf=use_idf, normalize_tf=normalize_tf)
        model.vocabulary = vocabulary
        model._df = df.copy()
        model._corpus_size = int(corpus_size)
        model._n_seen = int(np.count_nonzero(df))
        model._recompute_idf()
        return model

    def _recompute_idf(self) -> None:
        df = self._df.astype(float)
        idf = np.zeros(len(self.vocabulary))
        seen = df > 0
        idf[seen] = np.log(self._corpus_size / df[seen])
        self._idf = idf

    def fit(self, corpus: Corpus) -> "TfIdfModel":
        """Compute idf from the corpus document frequencies."""
        if len(corpus) == 0:
            raise ValueError("cannot fit tf-idf on an empty corpus")
        self.vocabulary = corpus.vocabulary
        self._corpus_size = len(corpus)
        self._df = corpus.document_frequencies()
        self._n_seen = int(np.count_nonzero(self._df))
        self._recompute_idf()
        return self

    def partial_fit(
        self, documents: Iterable[CountDocument] | DocumentBatch
    ) -> "TfIdfModel":
        """Fold a chunk of documents into the df/idf statistics.

        Incremental counterpart of :meth:`fit`: the batch's stacked term
        support bumps every touched document frequency and the corpus
        size in one columnar reduction, then idf is recomputed from the
        updated statistics — no refit over previously seen documents.
        Chunking is immaterial: ``partial_fit`` over any split of a
        corpus yields bit-identical idf to ``fit`` on the whole corpus
        (document frequencies are integers; summation order cannot
        matter).

        Raises if the model was rehydrated with :meth:`from_idf`, which
        stores the idf vector but not the document frequencies it came
        from (use :meth:`from_counts` for resumable models).
        """
        self.partial_fit_drift(documents)
        return self

    def partial_fit_drift(
        self, documents: Iterable[CountDocument] | DocumentBatch
    ) -> float:
        """:meth:`partial_fit` that also reports the idf drift it caused.

        Accepts a prepared :class:`~repro.core.document.DocumentBatch`
        (the service hands one straight through, already validated) or
        any iterable of documents, which is stacked into one.  The fold
        itself is a single O(nnz) column-support reduction over the
        whole batch — ``df += support`` once, not a dense O(|V|) add per
        document — and is bit-identical to folding the documents one at
        a time.

        Returns ``max_i |idf'_i - idf_i|`` without scanning the full
        vocabulary: terms the batch touched are measured directly, and
        every *untouched* previously-seen term moves by exactly
        ``log(N'/N)`` (its df is unchanged; only the corpus size in the
        numerator grew), so one scalar covers all of them.  The extra
        cost over the fold itself is O(batch support), not O(|V|).

        Returns ``inf`` for the batch that first fits the model (there
        is no previous idf to drift from) and ``0.0`` for an empty
        batch.
        """
        if self._df is None and self._idf is not None:
            raise RuntimeError(
                "model was rehydrated from an idf vector alone; its "
                "document frequencies are unknown, so it cannot be "
                "updated incrementally (rebuild with from_counts)"
            )
        if not isinstance(documents, DocumentBatch):
            documents = list(documents)
            if not documents:
                return 0.0  # an empty batch changes nothing, fitted or not
            # Stacking is itself the batch validation pass: every
            # document must share one vocabulary, so a mismatch cannot
            # leave _df half-bumped (a long-running service would
            # otherwise keep serving from corrupted counts).
            documents = DocumentBatch.from_documents(documents)
        elif not len(documents):
            return 0.0
        if self.vocabulary is None:
            self.vocabulary = documents.vocabulary
        elif documents.vocabulary != self.vocabulary:
            raise ValueError(
                "document vocabulary does not match the fitted corpus"
            )
        if self._df is None:
            self._df = np.zeros(len(self.vocabulary), dtype=np.int64)
        # _recompute_idf replaces the idf array rather than mutating it,
        # so holding the old reference costs nothing.
        old_idf = self._idf
        old_corpus_size = self._corpus_size
        # One stacked reduction for the whole batch: per term, the
        # number of batch documents containing it.
        support = documents.counts.column_support()
        touched = support > 0
        self._n_seen += int(np.count_nonzero(touched & (self._df == 0)))
        self._df += support
        self._corpus_size += len(documents)
        self._recompute_idf()
        if old_idf is None:
            return float("inf")
        touched_idx = np.flatnonzero(touched)
        drift = (
            float(np.max(np.abs(self._idf[touched_idx] - old_idf[touched_idx])))
            if touched_idx.size
            else 0.0
        )
        if self._n_seen > touched_idx.size and old_corpus_size > 0:
            # Some previously-seen term sits outside the batch; its idf
            # moved by the uniform corpus-growth shift.
            drift = max(
                drift, math.log(self._corpus_size / old_corpus_size)
            )
        return drift

    def partial_fit_reference(
        self, documents: Iterable[CountDocument]
    ) -> float:
        """The seed per-document fold, retained verbatim as the oracle.

        Folds the batch the way the pre-vectorization implementation
        did — a dense O(|V|) ``df += (counts > 0)`` per document — and
        reports the same drift.  :meth:`partial_fit_drift`'s stacked
        columnar fold must stay **bit-identical** to this for any batch
        (document frequencies are integers and idf is recomputed from
        them, so the equality is exact); the batch-ingest property tests
        and benchmarks hold the two against each other, exactly as the
        array scoring engine is held against ``search_reference``.
        """
        documents = list(documents)
        if self._df is None and self._idf is not None:
            raise RuntimeError(
                "model was rehydrated from an idf vector alone; its "
                "document frequencies are unknown, so it cannot be "
                "updated incrementally (rebuild with from_counts)"
            )
        if not documents:
            return 0.0
        if self.vocabulary is None:
            self.vocabulary = documents[0].vocabulary
        for doc in documents:
            if doc.vocabulary != self.vocabulary:
                raise ValueError(
                    "document vocabulary does not match the fitted corpus"
                )
        if self._df is None:
            self._df = np.zeros(len(self.vocabulary), dtype=np.int64)
        old_idf = self._idf
        old_corpus_size = self._corpus_size
        touched: np.ndarray | None = None
        for doc in documents:
            seen = doc.counts > 0
            self._df += seen
            self._n_seen += int(np.count_nonzero(self._df[seen] == 1))
            if touched is None:
                touched = seen
            else:
                touched = touched | seen
        self._corpus_size += len(documents)
        self._recompute_idf()
        if old_idf is None:
            return float("inf")
        touched_idx = np.flatnonzero(touched)
        drift = (
            float(np.max(np.abs(self._idf[touched_idx] - old_idf[touched_idx])))
            if touched_idx.size
            else 0.0
        )
        if self._n_seen > touched_idx.size and old_corpus_size > 0:
            drift = max(
                drift, math.log(self._corpus_size / old_corpus_size)
            )
        return drift

    @property
    def fitted(self) -> bool:
        return self._idf is not None

    @property
    def corpus_size(self) -> int:
        return self._corpus_size

    def document_frequencies(self) -> np.ndarray:
        """df_i over everything fitted so far (None-free copy)."""
        if self._df is None:
            raise RuntimeError(
                "model has no document-frequency state (unfitted, or "
                "rehydrated from idf alone)"
            )
        return self._df.copy()

    def idf(self) -> np.ndarray:
        if self._idf is None:
            raise RuntimeError("model is not fitted")
        return self._idf.copy()

    def idf_of(self, address: int) -> float:
        if self._idf is None or self.vocabulary is None:
            raise RuntimeError("model is not fitted")
        return float(self._idf[self.vocabulary.index_of(address)])

    # -- transforming ------------------------------------------------------------

    def transform(self, document: CountDocument) -> Signature:
        """Turn one count document into a tf-idf signature."""
        if self._idf is None:
            raise RuntimeError("model is not fitted")
        if document.vocabulary != self.vocabulary:
            raise ValueError("document vocabulary does not match fitted corpus")
        if self.normalize_tf:
            tf = document.term_frequencies()
        else:
            tf = document.counts.astype(float)
        weights = tf * self._idf if self.use_idf else tf
        return Signature(
            vocabulary=document.vocabulary,
            weights=weights,
            label=document.label,
            metadata=dict(document.metadata),
        )

    def transform_batch(
        self, documents: list[CountDocument] | DocumentBatch
    ) -> list[Signature]:
        """Unit tf-idf signatures for a whole batch, in one matrix pass.

        The vectorized form of ``[self.transform(doc).unit() for doc in
        documents]`` — and **bit-identical** to it, which is the
        contract the retained per-document path serves as the oracle
        for.  The arithmetic runs on the batch's CSR arrays in O(nnz)
        (length-normalize, gather-multiply by idf, pre-scale, unit
        division), with two deliberate detours for bit-identity:

        - entries scatter into one dense ``(batch, |V|)`` matrix —
          signatures are dense, and the oracle's norm reads the whole
          row (zeros included);
        - each row's norm is the row's BLAS ``dot`` in a short Python
          loop, NOT a vectorized ``sum(row**2, axis=1)``: that is what
          ``np.linalg.norm`` computes inside
          :func:`~repro.core.similarity.l2_normalize`, and numpy's
          axis-reduction pairwise sum differs from it by ulps.  The
          loop is O(batch) calls of C work — not the cost that made
          per-document ingest slow.

        Each returned signature shares a read-only row of the result
        matrix and is born with its sparse view cached, so downstream
        index appends do no dense re-scan.  The sharing is a deliberate
        memory trade: the batch's signatures together reference exactly
        one (batch, |V|) matrix — the same footprint as separate
        arrays when all of them are kept, which ingest always does —
        but holding onto a *single* signature from a large batch keeps
        the whole matrix alive.  Callers that extract a few signatures
        from a big transient batch should copy their weights.
        """
        # An empty batch transforms to nothing regardless of fit state,
        # exactly as the per-document comprehension would — checked
        # before fitted-ness so an empty ingest on a fresh service
        # stays a no-op instead of raising.
        if not isinstance(documents, DocumentBatch):
            if not documents:
                return []
            documents = DocumentBatch.from_documents(documents)
        elif not len(documents):
            return []
        if self._idf is None:
            raise RuntimeError("model is not fitted")
        if documents.vocabulary != self.vocabulary:
            raise ValueError("document vocabulary does not match fitted corpus")
        batch = documents
        csr = batch.counts
        n, dims = len(batch), len(self.vocabulary)
        row_ids = csr.row_ids()
        if self.normalize_tf:
            # Row totals are exact integers, so tf entries divide by the
            # very float(total) the per-document path uses.  Empty
            # documents have no entries and stay all-zero rows.
            totals = csr.row_sums().astype(float)
            tf_data = csr.data / totals[row_ids]
        else:
            tf_data = csr.data.astype(float)
        weights_data = tf_data * self._idf[csr.indices] if self.use_idf else tf_data

        # l2_normalize, row-wise.  Its pre-scale is the row max (the
        # weights are non-negative, so the scalar path's abs() changes
        # nothing), which only stored entries can set — an O(nnz)
        # per-row reduction, exactly as the dense scan would find it.
        scale = csr.row_reduce(np.maximum, data=weights_data, zero=0.0)
        safe_scale = np.where(scale > 0.0, scale, 1.0)
        scaled_data = weights_data / safe_scale[row_ids]

        # The one dense materialization: signatures are dense, and the
        # oracle's norm is BLAS ``dot`` over the full row under
        # ``np.linalg.norm`` — whose accumulation order a vectorized
        # ``sum(row**2, axis=1)`` does NOT reproduce (pairwise-sum ulps)
        # and a nonzeros-only product cannot (lane assignment sees the
        # zeros).  So: scatter once, one C-speed dot per row, and the
        # unit division runs in place (zeros divide to zeros).
        unit = np.zeros((n, dims))
        unit[row_ids, csr.indices] = scaled_data
        sqnorms = np.empty(n)
        for i in range(n):
            row = unit[i]
            sqnorms[i] = row.dot(row)
        norms = np.sqrt(sqnorms)
        safe_norms = np.where(norms > 0.0, norms, 1.0)
        # The unit division only moves the stored entries (zeros divide
        # to zeros), so it runs on the O(nnz) data and scatters over the
        # scaled entries in place rather than sweeping the whole matrix.
        unit_data = scaled_data / safe_norms[row_ids]
        unit[row_ids, csr.indices] = unit_data
        unit.setflags(write=False)

        # Entries that are zero in the unit rows — idf zeros, and
        # entries underflowing the unit scaling — drop out of the
        # sparse view exactly as SparseVector.from_dense would drop
        # them.
        keep = unit_data != 0.0
        kept_indices = csr.indices[keep]
        kept_data = unit_data[keep]
        kept_indices.setflags(write=False)
        kept_data.setflags(write=False)
        kept_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(row_ids[keep], minlength=n), out=kept_indptr[1:]
        )

        signatures = []
        for i in range(n):
            start, end = kept_indptr[i], kept_indptr[i + 1]
            sparse = SparseVector.from_sorted_arrays(
                kept_indices[start:end], kept_data[start:end]
            )
            signatures.append(
                Signature._from_valid(
                    self.vocabulary,
                    unit[i],
                    batch.labels[i],
                    batch.metadata[i],
                    sparse=sparse,
                )
            )
        return signatures

    def transform_corpus(self, corpus: Corpus) -> list[Signature]:
        """Transform every document; vectorized over the corpus matrix."""
        if self._idf is None:
            raise RuntimeError("model is not fitted")
        if corpus.vocabulary != self.vocabulary:
            raise ValueError("corpus vocabulary does not match fitted corpus")
        matrix = corpus.counts_matrix().astype(float)
        if self.normalize_tf and matrix.size:
            totals = matrix.sum(axis=1, keepdims=True)
            np.divide(matrix, totals, out=matrix, where=totals > 0)
        if self.use_idf:
            matrix *= self._idf
        return [
            Signature(
                vocabulary=corpus.vocabulary,
                weights=matrix[i],
                label=doc.label,
                metadata=dict(doc.metadata),
            )
            for i, doc in enumerate(corpus)
        ]

    def fit_transform(self, corpus: Corpus) -> list[Signature]:
        return self.fit(corpus).transform_corpus(corpus)

    def __repr__(self) -> str:
        state = f"fitted on {self._corpus_size} docs" if self.fitted else "unfitted"
        return (
            f"TfIdfModel(use_idf={self.use_idf}, "
            f"normalize_tf={self.normalize_tf}, {state})"
        )
