"""Immutable sparse containers for the signature ingest and search paths.

Signatures typically touch a few hundred of the ~3800 dimensions (most
kernel functions are silent in any given interval), so the inverted index
and similarity search (:mod:`repro.core.index`) operate on sparse vectors.
Batch statistics (tf-idf fitting, clustering, SVM training) use dense
matrices instead — converting back and forth is explicit and cheap.

:class:`SparseVector` is the one-vector form.  :class:`CsrMatrix` is the
*batch* form: many sparse rows over a shared column count in one CSR
triple (``indptr``/``indices``/``data``), so whole-batch folds and
transforms cost O(nnz) array work instead of O(rows x columns) Python
loops — the representation the vectorized ingest path is built on.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping, Sequence

import numpy as np

__all__ = ["CsrMatrix", "SparseVector", "sequential_norms"]


#: Rows per block in :func:`sequential_norms` — bounds the dense
#: (rows x widest-row) padding scratch regardless of batch size.
_NORM_BLOCK_ROWS = 1024


def sequential_norms(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-row L2 norms in strict left-to-right summation order.

    ``values`` concatenates the rows' entries; ``lengths`` gives each
    row's count.  The result is **bit-identical** to
    ``math.sqrt(sum(v * v for v in row))`` — :meth:`SparseVector.norm`'s
    own Python fold — for every row, which a plain ``np.sum`` (pairwise)
    or BLAS dot (lane-split) does not reproduce.  The trick: pad each
    row's squares to a common width with zeros and ``cumsum`` along the
    row axis — ``accumulate`` is defined strictly sequentially, and the
    trailing ``+ 0.0`` steps leave the partial sum's bits untouched — so
    the last column holds exactly the sequential sums, vectorized.
    Rows are processed in fixed-size blocks (each row's fold is
    independent), so the padding scratch stays bounded however large
    the batch.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    n = len(lengths)
    out = np.zeros(n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    for start in range(0, n, _NORM_BLOCK_ROWS):
        end = min(start + _NORM_BLOCK_ROWS, n)
        block_lengths = lengths[start:end]
        width = int(block_lengths.max()) if end > start else 0
        if width == 0:
            continue
        squares = np.zeros((end - start, width))
        mask = np.arange(width) < block_lengths[:, None]
        block_values = values[offsets[start] : offsets[end]]
        squares[mask] = block_values * block_values
        out[start:end] = np.sqrt(np.cumsum(squares, axis=1)[:, -1])
    return out


class CsrMatrix:
    """An immutable CSR matrix: sparse rows over a fixed column count.

    ``indptr[i]:indptr[i + 1]`` slices ``indices``/``data`` to row ``i``,
    with column indices strictly ascending within each row.  The arrays
    are frozen at construction, so row views handed out by :meth:`row`
    can be shared without copying.
    """

    __slots__ = ("indptr", "indices", "data", "n_cols", "_row_ids_cache")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        n_cols: int,
    ):
        if len(indices) != len(data):
            raise ValueError(
                f"indices ({len(indices)}) and data ({len(data)}) disagree"
            )
        if len(indptr) == 0 or int(indptr[0]) != 0 or int(indptr[-1]) != len(
            data
        ):
            raise ValueError("indptr does not span the data")
        for arr in (indptr, indices, data):
            arr.setflags(write=False)
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.n_cols = int(n_cols)
        self._row_ids_cache: np.ndarray | None = None

    @classmethod
    def from_rows(
        cls, rows: Sequence[tuple[np.ndarray, np.ndarray]], n_cols: int
    ) -> "CsrMatrix":
        """Stack per-row ``(indices, values)`` pairs (ascending indices)."""
        lengths = np.fromiter(
            (len(idx) for idx, _ in rows), dtype=np.int64, count=len(rows)
        )
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        if rows:
            indices = np.concatenate([idx for idx, _ in rows])
            data = np.concatenate([values for _, values in rows])
        else:
            indices = np.empty(0, dtype=np.int64)
            data = np.empty(0)
        return cls(indptr, indices, data, n_cols)

    @property
    def n_rows(self) -> int:
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        return len(self.data)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, values)`` views of row ``i`` (read-only, no copy)."""
        start, end = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[start:end], self.data[start:end]

    def row_ids(self) -> np.ndarray:
        """The row index of every stored entry (length ``nnz``, cached)."""
        if self._row_ids_cache is None:
            lengths = np.diff(self.indptr)
            ids = np.repeat(np.arange(self.n_rows, dtype=np.int64), lengths)
            ids.setflags(write=False)
            self._row_ids_cache = ids
        return self._row_ids_cache

    def column_support(self) -> np.ndarray:
        """Per column, the number of rows storing an entry in it — the
        batch document-frequency fold, one ``bincount`` over O(nnz)."""
        return np.bincount(self.indices, minlength=self.n_cols)

    def row_reduce(
        self, ufunc: np.ufunc, data: np.ndarray | None = None, zero=0
    ) -> np.ndarray:
        """Per-row ``ufunc.reduceat`` over entry-aligned ``data``.

        ``data`` defaults to the stored values; any array parallel to
        them (a derived per-entry quantity) works.  Rows with no
        entries get ``zero``.  The reduction runs over only the
        non-empty row starts: consecutive segments then span exactly
        one row's entries each (empty rows between them contribute no
        data), and no degenerate start == end segment ever forms —
        the one subtle safety argument for ``reduceat`` folds, kept in
        this one place.
        """
        if data is None:
            data = self.data
        out = np.full(self.n_rows, zero, dtype=data.dtype)
        starts = self.indptr[:-1]
        nonempty = np.flatnonzero(starts < self.indptr[1:])
        if nonempty.size:
            out[nonempty] = ufunc.reduceat(data, starts[nonempty])
        return out

    def row_sums(self) -> np.ndarray:
        """Per-row sum of stored values, in the data's own dtype.

        Integer data sums in exact integer arithmetic (the property the
        tf fold depends on: any summation order gives the same total).
        """
        return self.row_reduce(np.add)

    def __repr__(self) -> str:
        return (
            f"CsrMatrix(rows={self.n_rows}, cols={self.n_cols}, "
            f"nnz={self.nnz})"
        )


class SparseVector:
    """Immutable mapping dimension -> nonzero float value."""

    __slots__ = ("_dict_cache", "_norm_cache", "_sorted_cache", "_arrays_cache")

    def __init__(self, data: Mapping[int, float]):
        cleaned: dict[int, float] = {}
        for dim, value in data.items():
            if dim < 0:
                raise ValueError(f"negative dimension {dim}")
            value = float(value)
            if math.isnan(value) or math.isinf(value):
                raise ValueError(f"non-finite value at dimension {dim}")
            if value != 0.0:
                cleaned[int(dim)] = value
        self._dict_cache: dict[int, float] | None = cleaned
        self._norm_cache: float | None = None
        self._sorted_cache: tuple[tuple[int, float], ...] | None = None
        self._arrays_cache: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def _data(self) -> dict[int, float]:
        """The dim -> value dict, built lazily from the array form.

        Vectors born from arrays (:meth:`from_dense`,
        :meth:`from_sorted_arrays` — the whole ingest/scoring hot path)
        never pay the per-element dict build unless something actually
        iterates them as a mapping.
        """
        if self._dict_cache is None:
            idx, values = self._arrays_cache
            self._dict_cache = dict(zip(idx.tolist(), values.tolist()))
        return self._dict_cache

    @classmethod
    def from_dense(cls, dense) -> "SparseVector":
        arr = np.asarray(dense, dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"expected a 1-D vector, got shape {arr.shape}")
        idx = np.flatnonzero(arr).astype(np.int64)
        values = arr[idx]
        if not np.isfinite(values).all():
            raise ValueError("non-finite value in dense vector")
        # Fast path: the support is already validated, deduplicated, and
        # ascending, so skip the per-element __init__ checks and seed
        # the array cache directly — this constructor is the scoring
        # hot path (every Signature.to_sparse lands here).
        self = cls.__new__(cls)
        self._dict_cache = None
        self._norm_cache = None
        self._sorted_cache = None
        idx.setflags(write=False)
        values.setflags(write=False)
        self._arrays_cache = (idx, values)
        return self

    @classmethod
    def from_sorted_arrays(
        cls, dims: np.ndarray, values: np.ndarray
    ) -> "SparseVector":
        """Trusted constructor from ascending-dimension parallel arrays.

        The caller guarantees what :meth:`from_dense` establishes itself:
        dimensions ascending and unique, values finite and nonzero, both
        arrays read-only (or never mutated).  This is the batch-ingest
        fast path — one CSR row slice becomes a vector with no
        per-element Python at all.
        """
        self = cls.__new__(cls)
        self._dict_cache = None
        self._norm_cache = None
        self._sorted_cache = None
        self._arrays_cache = (dims, values)
        return self

    def to_dense(self, size: int) -> np.ndarray:
        idx, values = self.arrays()
        if idx.size and size <= int(idx[-1]):
            raise ValueError(
                f"size {size} too small for dimension {int(idx[-1])}"
            )
        out = np.zeros(size)
        out[idx] = values
        return out

    # -- inspection ------------------------------------------------------------

    @property
    def nnz(self) -> int:
        if self._dict_cache is None:
            return len(self._arrays_cache[0])
        return len(self._dict_cache)

    def dimensions(self) -> set[int]:
        if self._dict_cache is None:
            return set(self._arrays_cache[0].tolist())
        return set(self._dict_cache)

    def get(self, dim: int, default: float = 0.0) -> float:
        return self._data.get(dim, default)

    def items(self) -> Iterator[tuple[int, float]]:
        """(dim, value) pairs in insertion order, *not* sorted.

        Accumulation-style consumers (dot products, posting updates) do
        not care about order, and re-sorting on every call was a
        measurable cost on the scoring hot path.  Callers that need a
        deterministic ascending-dimension order use
        :meth:`sorted_items` (or :meth:`arrays`), whose sort is computed
        once and cached — the vector is immutable.  Vectors built by
        :meth:`from_dense` (every ``Signature.to_sparse``) are already
        in ascending order.
        """
        return iter(self._data.items())

    def sorted_items(self) -> Iterator[tuple[int, float]]:
        """(dim, value) pairs in ascending dimension order (cached)."""
        if self._sorted_cache is None:
            self._sorted_cache = tuple(sorted(self._data.items()))
        return iter(self._sorted_cache)

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(dimensions, values)`` as read-only numpy arrays, ascending.

        The array form of :meth:`sorted_items`, for vectorized scoring
        engines; computed once and cached.
        """
        if self._arrays_cache is None:
            pairs = tuple(self.sorted_items())
            dims = np.fromiter(
                (d for d, _ in pairs), dtype=np.int64, count=len(pairs)
            )
            values = np.fromiter(
                (v for _, v in pairs), dtype=float, count=len(pairs)
            )
            dims.setflags(write=False)
            values.setflags(write=False)
            self._arrays_cache = (dims, values)
        return self._arrays_cache

    def __len__(self) -> int:
        return self.nnz

    def __eq__(self, other) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._data == other._data

    def __repr__(self) -> str:
        return f"SparseVector(nnz={self.nnz})"

    # -- algebra ---------------------------------------------------------------

    def dot(self, other: "SparseVector") -> float:
        """Dot product; iterates over the smaller support."""
        a, b = self._data, other._data
        if len(b) < len(a):
            a, b = b, a
        return sum(value * b.get(dim, 0.0) for dim, value in a.items())

    def norm(self) -> float:
        if self._norm_cache is None:
            self._norm_cache = math.sqrt(
                sum(v * v for v in self._data.values())
            )
        return self._norm_cache

    def cosine(self, other: "SparseVector") -> float:
        na, nb = self.norm(), other.norm()
        if na == 0.0 or nb == 0.0:
            return 0.0
        return max(-1.0, min(1.0, self.dot(other) / (na * nb)))

    def euclidean(self, other: "SparseVector") -> float:
        dims = set(self._data) | set(other._data)
        return math.sqrt(
            sum((self.get(d) - other.get(d)) ** 2 for d in dims)
        )

    def scaled(self, factor: float) -> "SparseVector":
        return SparseVector({d: v * factor for d, v in self._data.items()})

    def unit(self) -> "SparseVector":
        """L2-normalized copy; the zero vector stays zero.

        Pre-scaled by the max magnitude like
        :func:`~repro.core.similarity.l2_normalize`: for components near
        the denormal floor a naive ``v / ||v||`` computes the norm from
        underflowed squares and lands visibly off the unit ball.
        """
        if not self.nnz:
            return SparseVector({})
        scale = max(abs(v) for v in self._data.values())
        if scale == 0.0:
            return SparseVector({})
        # Divide, don't multiply by the reciprocal: 1.0/scale overflows
        # to inf for subnormal scales, while v/scale is exact at 1.0
        # for the max component.
        scaled = {d: v / scale for d, v in self._data.items()}
        n = math.sqrt(sum(v * v for v in scaled.values()))
        if n == 0.0:
            return SparseVector({})
        return SparseVector({d: v / n for d, v in scaled.items()})

    def add(self, other: "SparseVector") -> "SparseVector":
        out = dict(self._data)
        for dim, value in other._data.items():
            out[dim] = out.get(dim, 0.0) + value
        return SparseVector(out)
