"""An immutable sparse vector for the signature search path.

Signatures typically touch a few hundred of the ~3800 dimensions (most
kernel functions are silent in any given interval), so the inverted index
and similarity search (:mod:`repro.core.index`) operate on sparse vectors.
Batch statistics (tf-idf fitting, clustering, SVM training) use dense
matrices instead — converting back and forth is explicit and cheap.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping

import numpy as np

__all__ = ["SparseVector"]


class SparseVector:
    """Immutable mapping dimension -> nonzero float value."""

    __slots__ = ("_data", "_norm_cache", "_sorted_cache", "_arrays_cache")

    def __init__(self, data: Mapping[int, float]):
        cleaned: dict[int, float] = {}
        for dim, value in data.items():
            if dim < 0:
                raise ValueError(f"negative dimension {dim}")
            value = float(value)
            if math.isnan(value) or math.isinf(value):
                raise ValueError(f"non-finite value at dimension {dim}")
            if value != 0.0:
                cleaned[int(dim)] = value
        self._data = cleaned
        self._norm_cache: float | None = None
        self._sorted_cache: tuple[tuple[int, float], ...] | None = None
        self._arrays_cache: tuple[np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_dense(cls, dense) -> "SparseVector":
        arr = np.asarray(dense, dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"expected a 1-D vector, got shape {arr.shape}")
        idx = np.flatnonzero(arr).astype(np.int64)
        values = arr[idx]
        if not np.isfinite(values).all():
            raise ValueError("non-finite value in dense vector")
        # Fast path: the support is already validated, deduplicated, and
        # ascending, so skip the per-element __init__ checks and seed
        # the sorted/array caches directly — this constructor is the
        # scoring hot path (every Signature.to_sparse lands here).
        self = cls.__new__(cls)
        self._data = dict(zip(idx.tolist(), values.tolist()))
        self._norm_cache = None
        self._sorted_cache = None
        idx.setflags(write=False)
        values.setflags(write=False)
        self._arrays_cache = (idx, values)
        return self

    def to_dense(self, size: int) -> np.ndarray:
        if self._data and size <= max(self._data):
            raise ValueError(
                f"size {size} too small for dimension {max(self._data)}"
            )
        out = np.zeros(size)
        for dim, value in self._data.items():
            out[dim] = value
        return out

    # -- inspection ------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return len(self._data)

    def dimensions(self) -> set[int]:
        return set(self._data)

    def get(self, dim: int, default: float = 0.0) -> float:
        return self._data.get(dim, default)

    def items(self) -> Iterator[tuple[int, float]]:
        """(dim, value) pairs in insertion order, *not* sorted.

        Accumulation-style consumers (dot products, posting updates) do
        not care about order, and re-sorting on every call was a
        measurable cost on the scoring hot path.  Callers that need a
        deterministic ascending-dimension order use
        :meth:`sorted_items` (or :meth:`arrays`), whose sort is computed
        once and cached — the vector is immutable.  Vectors built by
        :meth:`from_dense` (every ``Signature.to_sparse``) are already
        in ascending order.
        """
        return iter(self._data.items())

    def sorted_items(self) -> Iterator[tuple[int, float]]:
        """(dim, value) pairs in ascending dimension order (cached)."""
        if self._sorted_cache is None:
            self._sorted_cache = tuple(sorted(self._data.items()))
        return iter(self._sorted_cache)

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(dimensions, values)`` as read-only numpy arrays, ascending.

        The array form of :meth:`sorted_items`, for vectorized scoring
        engines; computed once and cached.
        """
        if self._arrays_cache is None:
            pairs = tuple(self.sorted_items())
            dims = np.fromiter(
                (d for d, _ in pairs), dtype=np.int64, count=len(pairs)
            )
            values = np.fromiter(
                (v for _, v in pairs), dtype=float, count=len(pairs)
            )
            dims.setflags(write=False)
            values.setflags(write=False)
            self._arrays_cache = (dims, values)
        return self._arrays_cache

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._data == other._data

    def __repr__(self) -> str:
        return f"SparseVector(nnz={self.nnz})"

    # -- algebra ---------------------------------------------------------------

    def dot(self, other: "SparseVector") -> float:
        """Dot product; iterates over the smaller support."""
        a, b = self._data, other._data
        if len(b) < len(a):
            a, b = b, a
        return sum(value * b.get(dim, 0.0) for dim, value in a.items())

    def norm(self) -> float:
        if self._norm_cache is None:
            self._norm_cache = math.sqrt(
                sum(v * v for v in self._data.values())
            )
        return self._norm_cache

    def cosine(self, other: "SparseVector") -> float:
        na, nb = self.norm(), other.norm()
        if na == 0.0 or nb == 0.0:
            return 0.0
        return max(-1.0, min(1.0, self.dot(other) / (na * nb)))

    def euclidean(self, other: "SparseVector") -> float:
        dims = set(self._data) | set(other._data)
        return math.sqrt(
            sum((self.get(d) - other.get(d)) ** 2 for d in dims)
        )

    def scaled(self, factor: float) -> "SparseVector":
        return SparseVector({d: v * factor for d, v in self._data.items()})

    def unit(self) -> "SparseVector":
        """L2-normalized copy; the zero vector stays zero."""
        n = self.norm()
        if n == 0.0:
            return SparseVector({})
        return self.scaled(1.0 / n)

    def add(self, other: "SparseVector") -> "SparseVector":
        out = dict(self._data)
        for dim, value in other._data.items():
            out[dim] = out.get(dim, 0.0) + value
        return SparseVector(out)
