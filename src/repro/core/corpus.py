"""Document corpora: collections supplying document-frequency statistics.

The corpus is the paper's "collection of low-level system activities".  Its
document frequencies feed the idf term of the tf-idf model; helpers for
label-based slicing support the classification and clustering experiments.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.document import CountDocument
from repro.core.vocabulary import Vocabulary

__all__ = ["Corpus"]


class Corpus:
    """An ordered collection of :class:`CountDocument` over one vocabulary."""

    def __init__(self, vocabulary: Vocabulary, documents: Iterable[CountDocument] = ()):
        self.vocabulary = vocabulary
        self._documents: list[CountDocument] = []
        self._df: np.ndarray = np.zeros(len(vocabulary), dtype=np.int64)
        for doc in documents:
            self.add(doc)

    def add(self, document: CountDocument) -> None:
        if document.vocabulary != self.vocabulary:
            raise ValueError(
                "document vocabulary does not match corpus vocabulary "
                f"({document.vocabulary.fingerprint()} != "
                f"{self.vocabulary.fingerprint()})"
            )
        self._documents.append(document)
        self._df += (document.counts > 0).astype(np.int64)

    def extend(self, documents: Iterable[CountDocument]) -> None:
        for doc in documents:
            self.add(doc)

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[CountDocument]:
        return iter(self._documents)

    def __getitem__(self, i: int) -> CountDocument:
        return self._documents[i]

    @property
    def documents(self) -> list[CountDocument]:
        return list(self._documents)

    def document_frequencies(self) -> np.ndarray:
        """df_i: the number of documents in which term i appears."""
        return self._df.copy()

    def labels(self) -> list[str | None]:
        return [doc.label for doc in self._documents]

    def distinct_labels(self) -> list[str]:
        seen: dict[str, None] = {}
        for doc in self._documents:
            if doc.label is not None and doc.label not in seen:
                seen[doc.label] = None
        return list(seen)

    def counts_matrix(self) -> np.ndarray:
        """Dense |D| x N matrix of raw counts (row per document)."""
        if not self._documents:
            return np.zeros((0, len(self.vocabulary)), dtype=np.int64)
        return np.stack([doc.counts for doc in self._documents])

    def filtered(self, predicate: Callable[[CountDocument], bool]) -> "Corpus":
        """A new corpus of the documents matching ``predicate``."""
        return Corpus(
            self.vocabulary, (d for d in self._documents if predicate(d))
        )

    def with_label(self, label: str) -> "Corpus":
        return self.filtered(lambda doc: doc.label == label)

    def merged(self, other: "Corpus") -> "Corpus":
        """Concatenate two corpora over the same vocabulary."""
        if other.vocabulary != self.vocabulary:
            raise ValueError("cannot merge corpora over different vocabularies")
        merged = Corpus(self.vocabulary, self._documents)
        merged.extend(other._documents)
        return merged

    def summary(self) -> dict:
        totals = [doc.total_calls for doc in self._documents]
        return {
            "documents": len(self._documents),
            "vocabulary": len(self.vocabulary),
            "labels": self.distinct_labels(),
            "total_calls": int(sum(totals)),
            "mean_document_length": float(np.mean(totals)) if totals else 0.0,
            "terms_with_df_gt0": int((self._df > 0).sum()),
        }
