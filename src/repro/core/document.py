"""Count documents: the raw material of signatures.

A :class:`CountDocument` holds the number of times each kernel function was
called during one logging interval — the difference between two consecutive
debugfs counter reads, exactly what the paper's user-space daemon logs.
Documents carry a label (for supervised experiments) and free-form metadata
(interval length, machine configuration, workload parameters).

A :class:`DocumentBatch` is the columnar form of many documents over one
vocabulary: counts in a CSR matrix (:class:`~repro.core.sparse.CsrMatrix`)
plus labels and metadata kept row-aligned.  Building one is the single
validation pass of the ingest path — vocabulary consistency, unlabeled
tally, and per-label counts all fall out of the same loop — and every
downstream batch operation (df fold, tf-idf transform, index append)
runs on its arrays in O(nnz).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.sparse import CsrMatrix
from repro.core.vocabulary import Vocabulary

__all__ = ["CountDocument", "DocumentBatch"]


class CountDocument:
    """Per-interval kernel function call counts over a fixed vocabulary."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        counts: np.ndarray,
        label: str | None = None,
        metadata: dict | None = None,
    ):
        counts = np.asarray(counts)
        if counts.shape != (len(vocabulary),):
            raise ValueError(
                f"counts shape {counts.shape} does not match vocabulary size "
                f"{len(vocabulary)}"
            )
        if not np.issubdtype(counts.dtype, np.integer):
            raise TypeError(f"counts must be integers, got {counts.dtype}")
        if (counts < 0).any():
            raise ValueError("counts must be non-negative")
        self.vocabulary = vocabulary
        self.counts = counts.astype(np.int64, copy=True)
        self.counts.setflags(write=False)
        self.label = label
        self.metadata = dict(metadata or {})

    @classmethod
    def from_mapping(
        cls,
        vocabulary: Vocabulary,
        counts_by_address: Mapping[int, int],
        label: str | None = None,
        metadata: dict | None = None,
        strict: bool = True,
    ) -> "CountDocument":
        """Build from an ``{address: count}`` mapping (daemon parse output).

        With ``strict`` (default), addresses outside the vocabulary raise —
        a count for an unknown function means the daemon and the kernel
        disagree about the symbol table, which is a real bug.  Non-strict
        mode drops them, for tolerant offline re-analysis.
        """
        counts = np.zeros(len(vocabulary), dtype=np.int64)
        for address, count in counts_by_address.items():
            if address not in vocabulary:
                if strict:
                    raise KeyError(
                        f"count for unknown function {address:#x}"
                    )
                continue
            counts[vocabulary.index_of(address)] = count
        return cls(vocabulary, counts, label=label, metadata=metadata)

    @property
    def total_calls(self) -> int:
        """Document length: total function calls in the interval."""
        return int(self.counts.sum())

    @property
    def distinct_terms(self) -> int:
        """Number of distinct functions invoked during the interval."""
        return int((self.counts > 0).sum())

    @property
    def is_empty(self) -> bool:
        return self.total_calls == 0

    def count_of(self, address: int) -> int:
        return int(self.counts[self.vocabulary.index_of(address)])

    def term_frequencies(self) -> np.ndarray:
        """Length-normalized term frequencies: tf_i = n_i / sum_k n_k.

        The normalization prevents bias toward longer runs (Section 2.1);
        an empty document maps to the zero vector.
        """
        total = self.counts.sum()
        if total == 0:
            return np.zeros(len(self.vocabulary))
        return self.counts / float(total)

    def relabeled(self, label: str) -> "CountDocument":
        """A copy with a different label (counts are shared, immutable)."""
        doc = CountDocument.__new__(CountDocument)
        doc.vocabulary = self.vocabulary
        doc.counts = self.counts
        doc.label = label
        doc.metadata = dict(self.metadata)
        return doc

    def __repr__(self) -> str:
        return (
            f"CountDocument(label={self.label!r}, total={self.total_calls}, "
            f"distinct={self.distinct_terms})"
        )


class DocumentBatch:
    """A columnar batch of count documents over one vocabulary.

    ``counts`` stores every document's nonzero counts as one CSR matrix
    (row = document, column = vocabulary dimension, ascending within a
    row); ``labels`` and ``metadata`` stay row-aligned.  The batch is
    immutable and validated once at construction — consumers
    (:meth:`~repro.core.tfidf.TfIdfModel.partial_fit_drift`,
    :meth:`~repro.core.tfidf.TfIdfModel.transform_batch`, the index
    appends) trust its invariants and do pure array work.
    """

    __slots__ = ("vocabulary", "counts", "labels", "metadata",
                 "unlabeled_documents", "label_counts")

    def __init__(
        self,
        vocabulary: Vocabulary,
        counts: CsrMatrix,
        labels: tuple[str | None, ...],
        metadata: tuple[dict, ...],
        unlabeled_documents: int,
        label_counts: dict[str, int],
    ):
        if counts.n_cols != len(vocabulary):
            raise ValueError(
                f"counts span {counts.n_cols} columns for a vocabulary of "
                f"size {len(vocabulary)}"
            )
        if not (counts.n_rows == len(labels) == len(metadata)):
            raise ValueError("counts, labels, and metadata disagree on rows")
        self.vocabulary = vocabulary
        self.counts = counts
        self.labels = labels
        self.metadata = metadata
        self.unlabeled_documents = unlabeled_documents
        self.label_counts = label_counts

    @classmethod
    def from_documents(
        cls,
        documents: Sequence[CountDocument],
        vocabulary: Vocabulary | None = None,
    ) -> "DocumentBatch":
        """Stack documents into columnar form in one validation pass.

        The pass checks every document against the batch vocabulary
        (``vocabulary`` if given, else the first document's) with an
        identity fast path — the common case of one shared
        :class:`Vocabulary` object costs one ``is`` per document, and
        distinct objects compare by their cached fingerprints instead of
        re-walking the term tuples — while tallying unlabeled documents
        and per-label counts in first-appearance order.  Raises
        ``ValueError`` on the first vocabulary mismatch; an empty batch
        requires an explicit ``vocabulary``.
        """
        if vocabulary is None:
            if not documents:
                raise ValueError(
                    "an empty batch needs an explicit vocabulary"
                )
            vocabulary = documents[0].vocabulary
        labels: list[str | None] = []
        metadata: list[dict] = []
        unlabeled = 0
        label_counts: dict[str, int] = {}
        for doc in documents:
            if doc.vocabulary is not vocabulary and (
                doc.vocabulary.fingerprint() != vocabulary.fingerprint()
            ):
                raise ValueError(
                    "document vocabulary does not match the batch "
                    "vocabulary (vocabulary fingerprints differ)"
                )
            label = doc.label
            labels.append(label)
            metadata.append(doc.metadata)
            if label is None:
                unlabeled += 1
            else:
                label_counts[label] = label_counts.get(label, 0) + 1
        # Counts are validated non-negative integers, so the stored
        # support (counts != 0) is exactly the seen set (counts > 0)
        # the document-frequency fold needs.
        n_cols = len(vocabulary)
        if documents:
            rows = []
            append = rows.append
            for doc in documents:
                counts = doc.counts
                idx = counts.nonzero()[0]
                append((idx, counts[idx]))
            counts = CsrMatrix.from_rows(rows, n_cols)
        else:
            counts = CsrMatrix(
                np.zeros(1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                n_cols,
            )
        return cls(
            vocabulary=vocabulary,
            counts=counts,
            labels=tuple(labels),
            metadata=tuple(metadata),
            unlabeled_documents=unlabeled,
            label_counts=label_counts,
        )

    def __len__(self) -> int:
        return self.counts.n_rows

    def __repr__(self) -> str:
        return (
            f"DocumentBatch(documents={len(self)}, "
            f"nnz={self.counts.nnz}, unlabeled={self.unlabeled_documents})"
        )
