"""Count documents: the raw material of signatures.

A :class:`CountDocument` holds the number of times each kernel function was
called during one logging interval — the difference between two consecutive
debugfs counter reads, exactly what the paper's user-space daemon logs.
Documents carry a label (for supervised experiments) and free-form metadata
(interval length, machine configuration, workload parameters).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.vocabulary import Vocabulary

__all__ = ["CountDocument"]


class CountDocument:
    """Per-interval kernel function call counts over a fixed vocabulary."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        counts: np.ndarray,
        label: str | None = None,
        metadata: dict | None = None,
    ):
        counts = np.asarray(counts)
        if counts.shape != (len(vocabulary),):
            raise ValueError(
                f"counts shape {counts.shape} does not match vocabulary size "
                f"{len(vocabulary)}"
            )
        if not np.issubdtype(counts.dtype, np.integer):
            raise TypeError(f"counts must be integers, got {counts.dtype}")
        if (counts < 0).any():
            raise ValueError("counts must be non-negative")
        self.vocabulary = vocabulary
        self.counts = counts.astype(np.int64, copy=True)
        self.counts.setflags(write=False)
        self.label = label
        self.metadata = dict(metadata or {})

    @classmethod
    def from_mapping(
        cls,
        vocabulary: Vocabulary,
        counts_by_address: Mapping[int, int],
        label: str | None = None,
        metadata: dict | None = None,
        strict: bool = True,
    ) -> "CountDocument":
        """Build from an ``{address: count}`` mapping (daemon parse output).

        With ``strict`` (default), addresses outside the vocabulary raise —
        a count for an unknown function means the daemon and the kernel
        disagree about the symbol table, which is a real bug.  Non-strict
        mode drops them, for tolerant offline re-analysis.
        """
        counts = np.zeros(len(vocabulary), dtype=np.int64)
        for address, count in counts_by_address.items():
            if address not in vocabulary:
                if strict:
                    raise KeyError(
                        f"count for unknown function {address:#x}"
                    )
                continue
            counts[vocabulary.index_of(address)] = count
        return cls(vocabulary, counts, label=label, metadata=metadata)

    @property
    def total_calls(self) -> int:
        """Document length: total function calls in the interval."""
        return int(self.counts.sum())

    @property
    def distinct_terms(self) -> int:
        """Number of distinct functions invoked during the interval."""
        return int((self.counts > 0).sum())

    @property
    def is_empty(self) -> bool:
        return self.total_calls == 0

    def count_of(self, address: int) -> int:
        return int(self.counts[self.vocabulary.index_of(address)])

    def term_frequencies(self) -> np.ndarray:
        """Length-normalized term frequencies: tf_i = n_i / sum_k n_k.

        The normalization prevents bias toward longer runs (Section 2.1);
        an empty document maps to the zero vector.
        """
        total = self.counts.sum()
        if total == 0:
            return np.zeros(len(self.vocabulary))
        return self.counts / float(total)

    def relabeled(self, label: str) -> "CountDocument":
        """A copy with a different label (counts are shared, immutable)."""
        doc = CountDocument.__new__(CountDocument)
        doc.vocabulary = self.vocabulary
        doc.counts = self.counts
        doc.label = label
        doc.metadata = dict(self.metadata)
        return doc

    def __repr__(self) -> str:
        return (
            f"CountDocument(label={self.label!r}, total={self.total_calls}, "
            f"distinct={self.distinct_terms})"
        )
