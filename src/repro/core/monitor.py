"""Continuous monitoring: streaming signature classification with alerts.

The paper's deployment story (Sections 1-2): Fmeter's overhead is low
enough to leave on in production, the daemon logs a signature every few
seconds, and an operator's tooling classifies each against a database of
known behaviours — raising an alert when a machine drifts into a known-bad
syndrome or away from everything known.

:class:`StreamingDetector` is that tooling: it consumes raw count
documents as they are harvested, transforms them with a fitted tf-idf
model, diagnoses them against a :class:`SignatureDatabase`, and applies
hysteresis (``consecutive`` matching intervals required) so a single noisy
interval does not page anyone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import SignatureDatabase
from repro.core.document import CountDocument
from repro.core.tfidf import TfIdfModel

__all__ = ["Alert", "StreamingDetector", "Verdict"]


@dataclass(frozen=True)
class Verdict:
    """Per-interval classification outcome."""

    interval: int
    label: str | None
    distance: float
    novel: bool

    @property
    def matched(self) -> bool:
        return self.label is not None and not self.novel


@dataclass(frozen=True)
class Alert:
    """Raised after ``consecutive`` matching intervals."""

    interval: int
    label: str
    kind: str  # "syndrome" or "novel"
    streak: int


@dataclass
class StreamingDetector:
    """Classify a stream of count documents against known syndromes.

    Parameters
    ----------
    model:
        A fitted :class:`TfIdfModel` (typically the one that built the
        database, so weights are comparable).
    database:
        A :class:`SignatureDatabase` with syndromes built.
    watch_labels:
        Labels considered alert-worthy (e.g. known-bad behaviours).  An
        empty set watches everything.
    novelty_threshold:
        Nearest-syndrome distance beyond which an interval counts as
        *novel* — behaviour unlike anything in the database (the paper:
        unknown behaviours cluster into new classes of their own).
    consecutive:
        Hysteresis: how many matching intervals in a row raise an alert.
    """

    model: TfIdfModel
    database: SignatureDatabase
    watch_labels: frozenset[str] = frozenset()
    novelty_threshold: float = 1.0
    consecutive: int = 3
    history: list[Verdict] = field(default_factory=list)
    alerts: list[Alert] = field(default_factory=list)
    _streak_label: str | None = None
    _streak: int = 0

    def __post_init__(self) -> None:
        if self.consecutive < 1:
            raise ValueError("consecutive must be >= 1")
        if self.novelty_threshold <= 0:
            raise ValueError("novelty_threshold must be positive")
        if not self.model.fitted:
            raise ValueError("detector needs a fitted tf-idf model")
        if not self.database.syndromes():
            raise ValueError("detector needs a database with syndromes built")

    # -- streaming ------------------------------------------------------------

    def observe(self, document: CountDocument) -> Verdict:
        """Classify one interval; may append an :class:`Alert`."""
        signature = self.model.transform(document).unit()
        syndrome, distance = self.database.nearest_syndrome(signature)
        novel = distance > self.novelty_threshold
        verdict = Verdict(
            interval=len(self.history),
            label=None if novel else syndrome.label,
            distance=distance,
            novel=novel,
        )
        self.history.append(verdict)
        self._update_streak(verdict)
        return verdict

    def observe_all(self, documents) -> list[Verdict]:
        return [self.observe(doc) for doc in documents]

    def _update_streak(self, verdict: Verdict) -> None:
        streak_key = "<novel>" if verdict.novel else verdict.label
        watched = (
            verdict.novel
            or not self.watch_labels
            or verdict.label in self.watch_labels
        )
        if not watched:
            self._streak_label, self._streak = None, 0
            return
        if streak_key == self._streak_label:
            self._streak += 1
        else:
            self._streak_label, self._streak = streak_key, 1
        if self._streak == self.consecutive:
            self.alerts.append(
                Alert(
                    interval=verdict.interval,
                    label=verdict.label if not verdict.novel else "<novel>",
                    kind="novel" if verdict.novel else "syndrome",
                    streak=self._streak,
                )
            )

    # -- reporting ---------------------------------------------------------------

    @property
    def current_streak(self) -> tuple[str | None, int]:
        return self._streak_label, self._streak

    def summary(self) -> dict:
        labels: dict[str, int] = {}
        for verdict in self.history:
            key = "<novel>" if verdict.novel else (verdict.label or "?")
            labels[key] = labels.get(key, 0) + 1
        return {
            "intervals": len(self.history),
            "alerts": len(self.alerts),
            "label_histogram": labels,
        }
