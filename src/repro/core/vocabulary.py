"""The term vocabulary: kernel function addresses as vector dimensions.

The set of distinct kernel functions induces the orthonormal basis of the
signature space (Section 2.1).  Terms are function *start addresses* —
names are ambiguous in a real kernel (duplicate ``static`` functions) —
but the vocabulary keeps the names for interpretability of results.

Signatures are only comparable within one vocabulary: the paper notes that
addresses are stable across reboots of one kernel build but not across
kernel versions, so :meth:`Vocabulary.fingerprint` gives a cheap identity
check that guards against mixing corpora from different "builds".
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence

__all__ = ["Vocabulary"]


class Vocabulary:
    """Immutable bidirectional mapping term (address) <-> dimension index."""

    def __init__(self, addresses: Sequence[int], names: Sequence[str] | None = None):
        self._addresses: tuple[int, ...] = tuple(int(a) for a in addresses)
        if not self._addresses:
            raise ValueError("vocabulary must contain at least one term")
        if len(set(self._addresses)) != len(self._addresses):
            raise ValueError("vocabulary terms must be unique")
        if names is not None:
            names = tuple(names)
            if len(names) != len(self._addresses):
                raise ValueError(
                    f"got {len(names)} names for {len(self._addresses)} terms"
                )
        self._names: tuple[str, ...] | None = names
        self._index: dict[int, int] = {
            addr: i for i, addr in enumerate(self._addresses)
        }

    @classmethod
    def from_symbol_table(cls, symbols) -> "Vocabulary":
        """Build from a :class:`repro.kernel.symbols.SymbolTable`."""
        functions = list(symbols)
        return cls(
            [fn.address for fn in functions], [fn.name for fn in functions]
        )

    def __len__(self) -> int:
        return len(self._addresses)

    def __iter__(self) -> Iterator[int]:
        return iter(self._addresses)

    def __contains__(self, address: int) -> bool:
        return address in self._index

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._addresses == other._addresses

    def __hash__(self) -> int:
        return hash(self._addresses)

    def index_of(self, address: int) -> int:
        try:
            return self._index[address]
        except KeyError:
            raise KeyError(f"term {address:#x} not in vocabulary") from None

    def term_at(self, index: int) -> int:
        if not 0 <= index < len(self._addresses):
            raise IndexError(f"dimension {index} out of range")
        return self._addresses[index]

    def name_at(self, index: int) -> str:
        """Human-readable name for a dimension (address hex if unnamed)."""
        if self._names is None:
            return f"{self.term_at(index):#x}"
        return self._names[index]

    def names(self) -> list[str]:
        return [self.name_at(i) for i in range(len(self))]

    def fingerprint(self) -> str:
        """Stable digest of the term set; same build -> same fingerprint.

        Cached: the vocabulary is immutable and the API layer checks
        the fingerprint on every fingerprint-carrying request.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            h = hashlib.blake2b(digest_size=16)
            for addr in self._addresses:
                h.update(addr.to_bytes(8, "little"))
            cached = self._fingerprint = h.hexdigest()
        return cached

    def subset_indices(self, addresses: Iterable[int]) -> list[int]:
        """Dimension indices for a set of terms (for feature selection)."""
        return [self.index_of(a) for a in addresses]
